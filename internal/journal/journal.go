// Package journal is the write-ahead job journal that makes the serving
// layer's job manager crash-durable: a compact append-only log of job state
// transitions (submitted with the full spec envelope, then
// running/done/failed/canceled) written to segment files under the server's
// data directory. After a crash — SIGKILL, OOM, power loss — the journal is
// replayed on boot: jobs that were queued or running are re-submitted from
// their envelopes, terminal jobs still inside their retention TTL are
// restored as retrievable history, and everything older is dropped.
//
// The design mirrors the dataset registry's storage discipline (binary
// format with magic + version, hardened chunked decode that a hostile file
// can never panic, fuzz-tested) applied to a log instead of a blob store:
//
//   - Records are length-prefixed and CRC32-guarded. A torn final record —
//     the normal residue of a crash mid-append — is truncated away on open,
//     never fatal; arbitrary bytes decode to "no more records", never to a
//     panic or a resurrected corrupt job.
//   - Durability is tunable: FsyncInterval == 0 fsyncs inline on the
//     records that matter (submit and terminal), > 0 batches appends in
//     memory and fsyncs on a background tick — group commit, bounding the
//     crash-loss window to one interval while keeping the submit hot path
//     free of synchronous disk waits.
//   - Segments rotate at MaxSegmentBytes; a closed segment is deleted once
//     every job recorded in it is terminal and past Retain (the job TTL) —
//     the log's steady-state size is proportional to live-or-recent jobs,
//     not to history.
//
// The writer implements the jobs.Journal interface directly; cmd/svserver
// opens the journal before the job manager and replays it before serving.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Journaled states, spelled exactly like the jobs package spells them so
// replay needs no translation layer. "queued" is implicit: a submit record
// with no later state record replays as queued.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether state is final.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

const (
	segVersion = 1
	// segHeaderLen is magic "KNJL" + uint32 version.
	segHeaderLen = 8
	// maxRecordBytes caps one record's payload so a forged length prefix
	// cannot force a giant allocation (the same fail-fast property the
	// dataset codec pins with its chunked reads).
	maxRecordBytes = 1 << 26
	// maxErrBytes bounds the persisted failure message of one job.
	maxErrBytes = 4096
)

var segMagic = [4]byte{'K', 'N', 'J', 'L'}

// Record kinds.
const (
	kindSubmit byte = 1 // id, time, envelope
	kindState  byte = 2 // id, time, state, error message
)

// State bytes for kindState records.
var stateBytes = map[string]byte{
	StateRunning:  1,
	StateDone:     2,
	StateFailed:   3,
	StateCanceled: 4,
}

var byteStates = map[byte]string{
	1: StateRunning,
	2: StateDone,
	3: StateFailed,
	4: StateCanceled,
}

// Config tunes a journal. Zero values select the documented defaults.
type Config struct {
	// Dir is the journal directory (created if missing). Required.
	Dir string
	// FsyncInterval selects the durability mode: 0 (the default) fsyncs
	// inline on every submit and terminal record — nothing acknowledged is
	// ever lost; > 0 batches appends and fsyncs at this interval — a crash
	// loses at most the last interval's acknowledgments, and the submit hot
	// path never waits on the disk; < 0 never fsyncs (tests, benchmarks of
	// the no-durability floor).
	FsyncInterval time.Duration
	// MaxSegmentBytes triggers segment rotation (default 4 MiB).
	MaxSegmentBytes int64
	// Retain is how long a terminal job's records stay replayable — set it
	// to the job manager's TTL (default 15m). Closed segments whose every
	// job is terminal and older than Retain are deleted.
	Retain time.Duration
	// Now overrides the clock, for compaction tests.
	Now func() time.Time
	// Logf receives degraded-mode diagnostics (write/sync failures, torn
	// records truncated on open). Default log.Printf. Journal I/O errors
	// are logged, never propagated into job execution: a full disk degrades
	// durability, not availability.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = 4 << 20
	}
	if c.Retain <= 0 {
		c.Retain = 15 * time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// JobState is the replayed view of one journaled job: the latest state the
// log proves, plus the submit envelope needed to re-create the submission.
type JobState struct {
	ID    string
	State string // StateQueued, StateRunning or a terminal state
	// Err is the persisted failure/cancellation message of a terminal job.
	Err string
	// Envelope is the opaque spec envelope of the submit record (nil when
	// compaction or corruption dropped it; such a job cannot be re-run).
	Envelope                   []byte
	Created, Started, Finished time.Time
}

// Writer is the append side of the journal. All methods are safe for
// concurrent use; the three record methods implement the jobs.Journal
// interface and never return errors — failures are logged and the journal
// degrades rather than failing jobs.
type Writer struct {
	cfg Config

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segBytes int64
	buf      []byte // pending appends not yet written to the file
	dirty    bool   // bytes written to the file but not fsynced
	closed   bool

	// Compaction bookkeeping: which jobs have records in which closed
	// segment, and where each job stands.
	segs     []*segInfo
	cur      *segInfo
	tracks   map[string]*track
	finishes int // Finished records since the last compaction attempt

	// replayed holds the segment files that predate Open, deleted by
	// PurgeReplayed once the server has re-journaled every live job.
	replayed []string

	stop chan struct{}
	wg   sync.WaitGroup
}

// segInfo records which jobs have at least one record in one segment.
type segInfo struct {
	path string
	jobs map[string]*track
}

// track is one job's compaction-relevant state, shared by every segment
// holding one of its records.
type track struct {
	terminal bool
	finished time.Time
}

func segName(index int) string { return fmt.Sprintf("wal-%08d.knjl", index) }

// Open replays the journal under cfg.Dir and returns a Writer appending to
// a fresh segment, plus the replayed job states sorted by creation time. A
// torn final record in the newest segment is truncated away (the normal
// residue of a crash mid-append); corruption anywhere stops that segment's
// replay at the last good record and is logged, never fatal.
//
// The pre-existing segments are left in place so a crash during replay
// loses nothing; once the server has re-submitted or restored every
// returned job (re-journaling each into the fresh segment), it calls
// PurgeReplayed to delete them.
func Open(cfg Config) (*Writer, []JobState, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("journal: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	type seg struct {
		index int
		path  string
	}
	var old []seg
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.knjl", &idx); n == 1 {
			old = append(old, seg{idx, filepath.Join(cfg.Dir, e.Name())})
		}
	}
	sort.Slice(old, func(i, j int) bool { return old[i].index < old[j].index })

	jobs := make(map[string]*JobState)
	nextIndex := 1
	for i, s := range old {
		nextIndex = s.index + 1
		recs, good, tornErr := readSegmentFile(s.path)
		for _, rc := range recs {
			applyRecord(jobs, rc)
		}
		if tornErr != nil {
			cfg.Logf("journal: %s: %v (replayed %d bytes)", s.path, tornErr, good)
			if i == len(old)-1 {
				// The newest segment's torn tail is where a crash landed
				// mid-append; cut it so the file is a clean prefix again.
				if err := os.Truncate(s.path, good); err != nil {
					cfg.Logf("journal: truncate %s: %v", s.path, err)
				}
			}
		}
	}

	w := &Writer{
		cfg:      cfg,
		segIndex: nextIndex,
		tracks:   make(map[string]*track),
		stop:     make(chan struct{}),
	}
	for _, s := range old {
		w.replayed = append(w.replayed, s.path)
	}
	if err := w.openSegmentLocked(); err != nil {
		return nil, nil, err
	}
	if cfg.FsyncInterval > 0 {
		w.wg.Add(1)
		go w.syncLoop()
	}

	states := make([]JobState, 0, len(jobs))
	for _, js := range jobs {
		states = append(states, *js)
	}
	sort.Slice(states, func(i, j int) bool {
		if !states[i].Created.Equal(states[j].Created) {
			return states[i].Created.Before(states[j].Created)
		}
		return states[i].ID < states[j].ID
	})
	return w, states, nil
}

// openSegmentLocked creates the next segment file and writes its header.
// Callers hold w.mu (or own the writer exclusively, as Open does).
func (w *Writer) openSegmentLocked() error {
	path := filepath.Join(w.cfg.Dir, segName(w.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	// Reserve the segment's blocks up front: with the extent and the size
	// already on disk, every later record datasync is a pure data write with
	// no filesystem-journal commit. Best-effort — a filesystem without
	// fallocate just pays the slower syncs.
	if err := preallocate(f, w.cfg.MaxSegmentBytes); err != nil {
		w.cfg.Logf("journal: preallocate %s: %v", path, err)
	}
	// The segment must exist durably before any record in it is
	// acknowledged; sync the file (header + allocation) and its directory
	// entry once.
	if w.cfg.FsyncInterval >= 0 {
		if err := f.Sync(); err != nil {
			w.cfg.Logf("journal: sync %s: %v", path, err)
		}
		if d, err := os.Open(w.cfg.Dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	w.f = f
	w.segBytes = segHeaderLen
	w.cur = &segInfo{path: path, jobs: make(map[string]*track)}
	return nil
}

// syncLoop is the group-commit goroutine of the batched fsync mode. The
// fsync itself runs OUTSIDE w.mu — an fsync takes orders of magnitude longer
// than an append, and holding the mutex across it would stall every
// Submitted/Running/Finished call behind the disk (measured at ~35% submit→
// done overhead; off the lock it is under the 5% budget). If a rotation
// closes the file mid-Sync, os.File's internal refcount keeps the descriptor
// valid until Sync returns, and the rotation's own flush has already
// persisted the bytes.
func (w *Writer) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.closed {
				w.mu.Unlock()
				continue
			}
			w.writeOutLocked()
			f, path, dirty := w.f, w.cur.path, w.dirty
			w.dirty = false
			w.mu.Unlock()
			if dirty {
				if err := datasync(f); err != nil {
					w.cfg.Logf("journal: sync %s: %v", path, err)
				}
			}
		}
	}
}

// writeOutLocked moves pending appends into the OS page cache. Errors are
// logged; the journal keeps accepting records so a transiently full disk
// degrades durability, not job execution. Callers hold w.mu.
func (w *Writer) writeOutLocked() {
	if len(w.buf) == 0 {
		return
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.cfg.Logf("journal: write %s: %v", w.cur.path, err)
	}
	w.buf = w.buf[:0]
	w.dirty = true
}

// flushLocked writes pending appends to the file and, when sync is set,
// fsyncs them inline — the inline-fsync mode's durable-record path plus the
// rotation/Close/purge barriers, where blocking under the lock is the point.
func (w *Writer) flushLocked(sync bool) {
	w.writeOutLocked()
	if sync && w.dirty {
		if err := datasync(w.f); err != nil {
			w.cfg.Logf("journal: sync %s: %v", w.cur.path, err)
		}
		w.dirty = false
	}
}

// appendLocked frames payload (length + CRC32) into the pending buffer,
// rotating the segment first when it is full. durable marks the records the
// inline-fsync mode must persist before returning (submit and terminal).
func (w *Writer) appendLocked(payload []byte, durable bool) {
	if w.closed {
		return
	}
	if w.segBytes >= w.cfg.MaxSegmentBytes {
		w.rotateLocked()
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.segBytes += int64(len(hdr) + len(payload))
	if durable && w.cfg.FsyncInterval == 0 {
		w.flushLocked(true)
	}
}

// rotateLocked seals the current segment and opens the next one.
func (w *Writer) rotateLocked() {
	w.flushLocked(w.cfg.FsyncInterval >= 0)
	w.trimLocked()
	if err := w.f.Close(); err != nil {
		w.cfg.Logf("journal: close %s: %v", w.cur.path, err)
	}
	w.segs = append(w.segs, w.cur)
	w.segIndex++
	if err := w.openSegmentLocked(); err != nil {
		// Keep the old file descriptor semantics dead but the writer alive:
		// every later append is dropped with a log line until Close.
		w.cfg.Logf("journal: rotate: %v", err)
		w.closed = true
		return
	}
	w.compactLocked()
}

// compactLocked deletes closed segments whose every job is terminal and
// past Retain — replaying the survivors alone reconstructs every job that
// still matters. Callers hold w.mu.
func (w *Writer) compactLocked() {
	now := w.cfg.Now()
	kept := w.segs[:0]
	for _, s := range w.segs {
		deletable := true
		for _, t := range s.jobs {
			if !t.terminal || now.Sub(t.finished) <= w.cfg.Retain {
				deletable = false
				break
			}
		}
		if !deletable {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(s.path); err != nil {
			w.cfg.Logf("journal: compact %s: %v", s.path, err)
			kept = append(kept, s)
			continue
		}
	}
	w.segs = kept
	// Drop tracks no segment (closed or current) references anymore.
	live := make(map[string]bool, len(w.cur.jobs))
	for id := range w.cur.jobs {
		live[id] = true
	}
	for _, s := range w.segs {
		for id := range s.jobs {
			live[id] = true
		}
	}
	for id := range w.tracks {
		if !live[id] {
			delete(w.tracks, id)
		}
	}
}

// trackLocked notes that job id has a record in the current segment.
func (w *Writer) trackLocked(id string) *track {
	t, ok := w.tracks[id]
	if !ok {
		t = &track{}
		w.tracks[id] = t
	}
	w.cur.jobs[id] = t
	return t
}

// Submitted journals a job submission with its opaque spec envelope. It is
// a durable record: in the inline-fsync mode it is on disk when this
// returns. Implements jobs.Journal.
func (w *Writer) Submitted(id string, at time.Time, envelope []byte) {
	payload := appendRecordHeader(nil, kindSubmit, id, at)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(envelope)))
	payload = append(payload, envelope...)
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.trackLocked(id)
	// A re-submission (journal replay re-running a job) reopens the job.
	t.terminal = false
	w.appendLocked(payload, true)
}

// Running journals a queued→running transition. Advisory: a lost running
// record replays the job as queued, which re-runs identically.
func (w *Writer) Running(id string, at time.Time) {
	payload := appendRecordHeader(nil, kindState, id, at)
	payload = append(payload, stateBytes[StateRunning], 0, 0)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.trackLocked(id)
	w.appendLocked(payload, false)
}

// Finished journals a terminal transition (done, failed or canceled) with
// the job's failure message, durably in the inline-fsync mode.
func (w *Writer) Finished(id string, state string, errMsg string, at time.Time) {
	sb, ok := stateBytes[state]
	if !ok || state == StateRunning {
		w.cfg.Logf("journal: job %s: not a terminal state: %q", id, state)
		return
	}
	if len(errMsg) > maxErrBytes {
		errMsg = errMsg[:maxErrBytes]
	}
	payload := appendRecordHeader(nil, kindState, id, at)
	payload = append(payload, sb)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(errMsg)))
	payload = append(payload, errMsg...)
	w.mu.Lock()
	defer w.mu.Unlock()
	t := w.trackLocked(id)
	t.terminal = true
	t.finished = at
	w.appendLocked(payload, true)
	if w.finishes++; w.finishes >= 64 && len(w.segs) > 0 {
		w.finishes = 0
		w.compactLocked()
	}
}

// PurgeReplayed deletes the segment files that predate Open. The server
// calls it once every job returned by Open has been re-submitted or
// restored — i.e. re-journaled into the fresh segment — making the old
// files redundant. Until then they survive, so a crash during replay
// re-replays from the originals.
func (w *Writer) PurgeReplayed() {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Everything re-journaled during replay must be durable before the only
	// other copy is deleted.
	w.flushLocked(w.cfg.FsyncInterval >= 0)
	for _, path := range w.replayed {
		if err := os.Remove(path); err != nil {
			w.cfg.Logf("journal: purge %s: %v", path, err)
		}
	}
	w.replayed = nil
}

// Close flushes, fsyncs and closes the journal. Idempotent.
func (w *Writer) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked(w.cfg.FsyncInterval >= 0)
	w.trimLocked()
	w.closed = true
	if err := w.f.Close(); err != nil {
		w.cfg.Logf("journal: close %s: %v", w.cur.path, err)
	}
}

// trimLocked cuts the preallocated zero tail off the current segment before
// it is sealed, so closed segments are exactly their records. If a crash
// preempts the trim, replay stops at the first zero frame and the next Open
// truncates — the same recovery as a torn record.
func (w *Writer) trimLocked() {
	if w.segBytes < w.cfg.MaxSegmentBytes {
		if err := w.f.Truncate(w.segBytes); err != nil {
			w.cfg.Logf("journal: trim %s: %v", w.cur.path, err)
		}
	}
}

// appendRecordHeader appends the common record prefix: kind, id, unix-nano
// timestamp.
func appendRecordHeader(b []byte, kind byte, id string, at time.Time) []byte {
	if len(id) > 255 {
		id = id[:255]
	}
	b = append(b, kind, byte(len(id)))
	b = append(b, id...)
	b = binary.LittleEndian.AppendUint64(b, uint64(at.UnixNano()))
	return b
}
