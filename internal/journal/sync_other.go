//go:build !linux

package journal

import "os"

// preallocate is a no-op where fallocate is unavailable; datasync falls back
// to a full fsync. Appends are then slower (each sync commits the size
// change) but exactly as durable.
func preallocate(f *os.File, size int64) error { return nil }

func datasync(f *os.File) error { return f.Sync() }
