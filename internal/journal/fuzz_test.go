package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"
)

// validSegment builds a well-formed segment for the fuzz corpus.
func validSegment(recs ...[]byte) []byte {
	var b bytes.Buffer
	var hdr [segHeaderLen]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	b.Write(hdr[:])
	for _, payload := range recs {
		var frame [8]byte
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		b.Write(frame[:])
		b.Write(payload)
	}
	return b.Bytes()
}

// FuzzJournalDecode pins the hardened-decode property: readSegment never
// panics on arbitrary bytes, never allocates past the record cap, and on a
// corrupt or torn input returns the records of the valid prefix plus its
// exact byte offset — truncation, not failure, is the recovery story.
func FuzzJournalDecode(f *testing.F) {
	now := time.Unix(1000, 0)
	submit := appendRecordHeader(nil, kindSubmit, "j000001", now)
	submit = binary.LittleEndian.AppendUint32(submit, 4)
	submit = append(submit, "envl"...)
	running := appendRecordHeader(nil, kindState, "j000001", now)
	running = append(running, stateBytes[StateRunning], 0, 0)
	finished := appendRecordHeader(nil, kindState, "j000001", now)
	finished = append(finished, stateBytes[StateFailed])
	finished = binary.LittleEndian.AppendUint16(finished, 4)
	finished = append(finished, "boom"...)

	f.Add([]byte{})
	f.Add([]byte("KNJL"))
	f.Add(validSegment())
	f.Add(validSegment(submit))
	f.Add(validSegment(submit, running, finished))
	f.Add(validSegment(submit)[:segHeaderLen+5]) // torn mid-record
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, _ := readSegment(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("valid-prefix offset %d outside [0,%d]", good, len(data))
		}
		if len(recs) > 0 && good < segHeaderLen {
			t.Fatalf("%d records decoded from a %d-byte valid prefix", len(recs), good)
		}
		// The valid prefix must re-decode to exactly the same records —
		// the property the torn-tail truncation on Open relies on.
		if good >= segHeaderLen {
			recs2, good2, err := readSegment(bytes.NewReader(data[:good]))
			if err != nil {
				t.Fatalf("valid prefix re-decode failed: %v", err)
			}
			if good2 != good || len(recs2) != len(recs) {
				t.Fatalf("re-decode of valid prefix: %d records / offset %d, want %d / %d",
					len(recs2), good2, len(recs), good)
			}
		}
		// Replay of whatever decoded must not panic either.
		jobs := make(map[string]*JobState)
		for _, rc := range recs {
			applyRecord(jobs, rc)
		}
	})
}
