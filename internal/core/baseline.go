package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"knnshapley/internal/game"
	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
)

// BaselineMC is the Section 2.2 baseline estimator: permutation sampling
// with a from-scratch utility evaluation per prefix (each evaluation sorts
// the prefix's K nearest neighbors out of the whole prefix), giving
// O(T·N²·log K) work where Algorithm 2 spends O(T·N·log K). Its permutation
// budget comes from the Hoeffding bound and therefore grows with log N.
//
// It exists as the evaluation baseline of Figures 5–6 and 11; use ImprovedMC
// for real workloads.
func BaselineMC(ctx context.Context, tps []*knn.TestPoint, eps, delta float64, capT int, seed uint64) (MCResult, error) {
	if len(tps) == 0 {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	tp0 := tps[0]
	if tp0.Kind != knn.UnweightedClass {
		return MCResult{}, fmt.Errorf("core: baseline budget is defined for the unweighted classification utility")
	}
	width := 2 / float64(tp0.K)
	budget := stats.HoeffdingPermutations(width, eps, delta, tp0.N())
	if capT > 0 && budget > capT {
		budget = capT
	}
	u := game.Func{Players: tp0.N(), F: func(s []int) float64 {
		return knn.AverageUtility(tps, s)
	}}
	rng := rand.New(rand.NewPCG(seed, 0xabcdef0123456789))
	sv, err := game.MonteCarloShapleyCtx(ctx, u, budget, rng)
	if err != nil {
		return MCResult{}, err
	}
	return MCResult{SV: sv, Permutations: budget, Budget: budget, UtilityEvals: budget * tp0.N() * len(tps)}, nil
}
