package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/game"
	"knnshapley/internal/knn"
)

// randomOwners assigns n points to m sellers, guaranteeing every seller at
// least one point.
func randomOwners(n, m int, rng *rand.Rand) []int {
	owners := make([]int, n)
	perm := rng.Perm(n)
	for j := 0; j < m; j++ {
		owners[perm[j]] = j
	}
	for _, i := range perm[m:] {
		owners[i] = rng.IntN(m)
	}
	return owners
}

// Theorem 8 must agree with brute-force enumeration of the seller-level
// game for every utility kind.
func TestMultiSellerSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1212, 12))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.IntN(6)
		n := m + rng.IntN(8)
		k := 1 + rng.IntN(4)
		var tp *knn.TestPoint
		switch trial % 4 {
		case 0:
			tp = randomClassTP(n, 3, k, rng)
		case 1:
			tp = randomRegressTP(n, k, rng)
		case 2:
			tp = randomWeightedTP(n, k, false, rng)
		default:
			tp = randomWeightedTP(n, k, true, rng)
		}
		owners := randomOwners(n, m, rng)
		got, err := MultiSellerSV(tp, owners, m)
		if err != nil {
			t.Fatal(err)
		}
		gu, err := game.NewGroupUtility(tpGame(tp), owners, m)
		if err != nil {
			t.Fatal(err)
		}
		want := game.ExactShapley(gu)
		assertClose(t, got, want, 1e-8, "multi-seller")
	}
}

// Theorem 12 (composite multi-seller) against brute force.
func TestCompositeMultiSellerSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1313, 13))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.IntN(5)
		n := m + rng.IntN(7)
		k := 1 + rng.IntN(3)
		var tp *knn.TestPoint
		if trial%2 == 0 {
			tp = randomClassTP(n, 2, k, rng)
		} else {
			tp = randomRegressTP(n, k, rng)
		}
		owners := randomOwners(n, m, rng)
		got, err := CompositeMultiSellerSV(tp, owners, m)
		if err != nil {
			t.Fatal(err)
		}
		gu, err := game.NewGroupUtility(tpGame(tp), owners, m)
		if err != nil {
			t.Fatal(err)
		}
		full := game.ExactShapley(game.Composite{Base: gu})
		assertClose(t, got.Sellers, full[:m], 1e-8, "composite multi-seller")
		if math.Abs(got.Analyst-full[m]) > 1e-8 {
			t.Fatalf("analyst = %v want %v", got.Analyst, full[m])
		}
	}
}

// With one point per seller, the multi-seller algorithm must reduce to the
// single-point exact algorithm (the K=1 remark of Section 4 generalized).
func TestMultiSellerReducesToPerPoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(1414, 14))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.IntN(10)
		k := 1 + rng.IntN(3)
		tp := randomClassTP(n, 3, k, rng)
		owners := make([]int, n)
		for i := range owners {
			owners[i] = i
		}
		got, err := MultiSellerSV(tp, owners, n)
		if err != nil {
			t.Fatal(err)
		}
		want := ExactClassSV(tp)
		assertClose(t, got, want, 1e-9, "per-point reduction")
	}
}

func TestMultiSellerValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tp := randomClassTP(4, 2, 1, rng)
	if _, err := MultiSellerSV(tp, []int{0, 1}, 2); err == nil {
		t.Error("owner length mismatch accepted")
	}
	if _, err := MultiSellerSV(tp, []int{0, 0, 0, 9}, 2); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := MultiSellerSV(tp, []int{0, 0, 0, 0}, 2); err == nil {
		t.Error("empty seller accepted")
	}
}

// Group rationality at the seller level on instances beyond brute force.
func TestMultiSellerEfficiency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1515, 15))
	tp := randomClassTP(40, 3, 5, rng)
	owners := randomOwners(40, 8, rng)
	sv, err := MultiSellerSV(tp, owners, 8)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	got := sum(sv)
	want := tp.SubsetUtility(all) - tp.EmptyUtility()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Σ seller sv = %v want %v", got, want)
	}
}
