package core

import (
	"fmt"
	"runtime"
	"sync"

	"knnshapley/internal/knn"
)

// Options controls shared execution knobs of the exact algorithms.
type Options struct {
	// Workers bounds the number of goroutines used to fan out over test
	// points. Zero selects GOMAXPROCS.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ExactClassSV computes the exact Shapley value of every training point for
// the unweighted KNN classification utility (Eq. 5) of a single test point,
// via the O(N log N) recursion of Theorem 1 / Algorithm 1:
//
//	s_{α_N} = 1[y_{α_N} = y_test] / N
//	s_{α_i} = s_{α_{i+1}} + (1[y_{α_i}=y] − 1[y_{α_{i+1}}=y])/K · min(K,i)/i
func ExactClassSV(tp *knn.TestPoint) []float64 {
	requireKind(tp, knn.UnweightedClass)
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return sv
	}
	order := tp.Order()
	k := float64(tp.K)
	// Base case. Eq. (6) assumes N >= K; in general the farthest point is
	// pivotal for the min(K,N) coalition sizes below K, giving
	// s_{α_N} = 1[correct]·min(N,K)/(N·K) = 1[correct]/max(N,K).
	sv[order[n-1]] = ind(tp.Correct[order[n-1]]) / float64(max(n, tp.K))
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i]
		minKi := float64(min(tp.K, i))
		sv[cur] = sv[next] + (ind(tp.Correct[cur])-ind(tp.Correct[next]))/k*minKi/float64(i)
	}
	return sv
}

// ExactClassSVMulti computes exact Shapley values for the multi-test-point
// utility (Eq. 8): the average of the per-test-point values, fanned out over
// Options.Workers goroutines. This is the full Algorithm 1.
func ExactClassSVMulti(tps []*knn.TestPoint, opts Options) []float64 {
	return averageOver(tps, opts, ExactClassSV)
}

// ind converts a correctness indicator to the paper's 1[·] term.
func ind(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func requireKind(tp *knn.TestPoint, want knn.Kind) {
	if tp.Kind != want {
		panic(fmt.Sprintf("core: utility kind %v, want %v", tp.Kind, want))
	}
}

// averageOver runs per-test-point Shapley computation in parallel and
// averages the results (valid by additivity).
func averageOver(tps []*knn.TestPoint, opts Options, f func(*knn.TestPoint) []float64) []float64 {
	if len(tps) == 0 {
		return nil
	}
	n := tps[0].N()
	results := make([][]float64, len(tps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.workers())
	for j := range tps {
		if tps[j].N() != n {
			panic("core: test points disagree on training size")
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[j] = f(tps[j])
		}(j)
	}
	wg.Wait()
	sv := make([]float64, n)
	for _, r := range results {
		for i, v := range r {
			sv[i] += v
		}
	}
	inv := 1 / float64(len(tps))
	for i := range sv {
		sv[i] *= inv
	}
	return sv
}
