package core

import (
	"context"
	"fmt"

	"knnshapley/internal/knn"
)

// Options controls shared execution knobs of the exact algorithms. It is
// the legacy surface of EngineConfig kept for the thin *SVMulti wrappers.
type Options struct {
	// Workers bounds the number of goroutines used to fan out over test
	// points. Zero selects GOMAXPROCS.
	Workers int
}

func (o Options) engine() EngineConfig { return EngineConfig{Workers: o.Workers} }

// ExactClassSV computes the exact Shapley value of every training point for
// the unweighted KNN classification utility (Eq. 5) of a single test point,
// via the O(N log N) recursion of Theorem 1 / Algorithm 1:
//
//	s_{α_N} = 1[y_{α_N} = y_test] / N
//	s_{α_i} = s_{α_{i+1}} + (1[y_{α_i}=y] − 1[y_{α_{i+1}}=y])/K · min(K,i)/i
func ExactClassSV(tp *knn.TestPoint) []float64 {
	sv := make([]float64, tp.N())
	exactClassSVInto(tp, NewScratch(), sv)
	return sv
}

// exactClassSVInto is the scratch-aware Theorem 1 recursion writing into a
// zeroed dst of length tp.N().
func exactClassSVInto(tp *knn.TestPoint, s *Scratch, dst []float64) {
	requireKind(tp, knn.UnweightedClass)
	n := tp.N()
	if n == 0 {
		return
	}
	order := s.OrderOf(tp)
	k := float64(tp.K)
	// Base case. Eq. (6) assumes N >= K; in general the farthest point is
	// pivotal for the min(K,N) coalition sizes below K, giving
	// s_{α_N} = 1[correct]·min(N,K)/(N·K) = 1[correct]/max(N,K).
	dst[order[n-1]] = ind(tp.Correct[order[n-1]]) / float64(max(n, tp.K))
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i]
		minKi := float64(min(tp.K, i))
		dst[cur] = dst[next] + (ind(tp.Correct[cur])-ind(tp.Correct[next]))/k*minKi/float64(i)
	}
}

// ExactClassFromRankingInto runs the Theorem 1 recursion over an externally
// produced full neighbor ranking (every training index exactly once, by
// ascending (distance, index)) with per-rank correctness indicators, writing
// into a zeroed dst of length len(ranking). The arithmetic is op-for-op the
// expression of exactClassSVInto — same base case, same difference term —
// so a ranking equal to the single-node α ordering yields bit-identical
// values. This is the merge-side half of the distributed exact valuation:
// the cluster coordinator k-way-merges shard-local sorted neighbor lists
// into the global ranking and replays the recursion here.
func ExactClassFromRankingInto(ranking []int, correct []bool, k int, dst []float64) {
	n := len(ranking)
	if n == 0 {
		return
	}
	dst[ranking[n-1]] = ind(correct[n-1]) / float64(max(n, k))
	recurseUp(dst, ranking, correct, k, n-1)
}

// ExactClassSVMulti computes exact Shapley values for the multi-test-point
// utility (Eq. 8): the average of the per-test-point values, dispatched
// through the shared Engine. This is the full Algorithm 1.
func ExactClassSVMulti(tps []*knn.TestPoint, opts Options) []float64 {
	if len(tps) == 0 {
		return nil
	}
	return mustRun(tps, opts, ExactClassKernel{N: tps[0].N()})
}

// mustRun executes a TestPoint kernel over an in-memory slice, preserving
// the seed *SVMulti contract: nil for no test points, panic on malformed
// input (mismatched training sizes, wrong utility kind).
func mustRun(tps []*knn.TestPoint, opts Options, kern Kernel[*knn.TestPoint]) []float64 {
	if len(tps) == 0 {
		return nil
	}
	sv, err := NewEngine[*knn.TestPoint](opts.engine()).Run(context.Background(), NewSliceSource(tps), kern)
	if err != nil {
		panic(err)
	}
	return sv
}

// ind converts a correctness indicator to the paper's 1[·] term.
func ind(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func requireKind(tp *knn.TestPoint, want knn.Kind) {
	if tp.Kind != want {
		panic(fmt.Sprintf("core: utility kind %v, want %v", tp.Kind, want))
	}
}
