package core

import (
	"fmt"

	"knnshapley/internal/knn"
)

// This file implements the Appendix F generalization: any utility whose
// adjacent-pair difference has the "piecewise" form
//
//	ν(S ∪ {α_i}) − ν(S ∪ {α_{i+1}}) = Σ_t C_t(i) · 1[S ∈ S_t(i)]
//
// admits an O(N·T) Shapley computation, because by Lemma 1
//
//	s_i − s_{i+1} = (1/(N−1)) Σ_t C_t · Σ_k |{S ∈ S_t, |S|=k}| / C(N−2,k)
//
// reduces valuation to a counting problem (Eq. 31). The group families the
// paper's utilities need are "hypergeometric threshold" groups — membership
// depends on how many of the first f ranked points the coalition contains,
// optionally with one pinned member — and their count sums have the closed
// forms below. PiecewiseClassSV and PiecewiseRegressSV re-derive Theorems 1
// and 6 through this engine; tests assert they coincide with the direct
// recursions.

// PiecewiseTerm is one (C_t, S_t) group of the piecewise difference, with
// the group's count sum Σ_k |{S ∈ S_t, |S|=k}|/C(N−2,k) already folded.
type PiecewiseTerm struct {
	C         float64
	WeightSum float64
}

// PiecewiseDifference evaluates s_i − s_{i+1} of Eq. (31) for a pair whose
// difference decomposes into the given terms.
func PiecewiseDifference(n int, terms []PiecewiseTerm) float64 {
	if n < 2 {
		panic(fmt.Sprintf("core: PiecewiseDifference needs n >= 2, got %d", n))
	}
	var s float64
	for _, t := range terms {
		s += t.C * t.WeightSum
	}
	return s / float64(n-1)
}

// WeightThreshold is the count sum of the group
// S_t = {S ⊆ I∖{α_i,α_{i+1}} : |S ∩ front| ≤ K−1} where front holds the f
// points ranked before α_i. Via the binomial identity of Theorem 1's proof
// it equals min(K, f+1)·(N−1)/(f+1).
func WeightThreshold(n, k, f int) float64 {
	if f < 0 {
		panic("core: negative front size")
	}
	return float64(min(k, f+1)) * float64(n-1) / float64(f+1)
}

// WeightThresholdWithPrefixMember is the count sum of the regression group
// S_t = {S : |S ∩ front(i)| ≤ K−1, α_l ∈ S} for a pinned member ranked
// l < i (Eq. 69): (N−1)·min(K,i)·min(K−1,i−1)/(2(i−1)i)·(2/1)… folded as in
// the paper, i.e. U21 of Theorem 6's proof.
func WeightThresholdWithPrefixMember(n, k, i int) float64 {
	if i < 2 {
		return 0
	}
	return float64(n-1) / (float64(i-1) * float64(i)) *
		float64(min(k, i)) * float64(min(k-1, i-1)) / 2
}

// WeightThresholdWithSuffixMember is the count sum of the regression group
// with a pinned member ranked l ≥ i+2 (Eq. 70), i.e. U22 of Theorem 6's
// proof: (N−1)·min(K,l−1)·min(K−1,l−2)/(2(l−1)(l−2)).
func WeightThresholdWithSuffixMember(n, k, l int) float64 {
	if l < 3 {
		return 0
	}
	return float64(n-1) / (float64(l-1) * float64(l-2)) *
		float64(min(k, l-1)) * float64(min(k-1, l-2)) / 2
}

// PiecewiseClassSV recomputes the unweighted KNN classification Shapley
// values through the Appendix F engine: the difference has T = 1 with
// C = (1[y_i = y] − 1[y_{i+1} = y])/K and the threshold group of front size
// i−1 (Eq. 99/100). It must agree with ExactClassSV exactly.
func PiecewiseClassSV(tp *knn.TestPoint) []float64 {
	requireKind(tp, knn.UnweightedClass)
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return sv
	}
	order := tp.Order()
	k := float64(tp.K)
	sv[order[n-1]] = ind(tp.Correct[order[n-1]]) / float64(max(n, tp.K))
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i]
		terms := []PiecewiseTerm{{
			C:         (ind(tp.Correct[cur]) - ind(tp.Correct[next])) / k,
			WeightSum: WeightThreshold(n, tp.K, i-1),
		}}
		sv[cur] = sv[next] + PiecewiseDifference(n, terms)
	}
	return sv
}

// PiecewiseRegressSV recomputes the unweighted KNN regression Shapley values
// through the Appendix F engine: T = N−1 groups — one threshold group with
// C = (y_{i+1}−y_i)/K·((y_i+y_{i+1})/K − 2·y_test) and one pinned-member
// group per other training point with C = 2(y_{i+1}−y_i)·y_l/K² (Eq. 101).
// It must agree with ExactRegressSV up to floating-point error.
func PiecewiseRegressSV(tp *knn.TestPoint) []float64 {
	requireKind(tp, knn.UnweightedRegress)
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return sv
	}
	// Reuse the verified base case, then rebuild every difference through
	// the generic engine.
	exact := ExactRegressSV(tp)
	order := tp.Order()
	k := float64(tp.K)
	y := make([]float64, n+1)
	for r, id := range order {
		y[r+1] = tp.Y[id]
	}
	sv[order[n-1]] = exact[order[n-1]]
	for i := n - 1; i >= 1; i-- {
		terms := make([]PiecewiseTerm, 0, n-1)
		diffY := y[i+1] - y[i]
		terms = append(terms, PiecewiseTerm{
			C:         diffY / k * ((y[i]+y[i+1])/k - 2*tp.YTest),
			WeightSum: WeightThreshold(n, tp.K, i-1),
		})
		for l := 1; l <= n; l++ {
			if l == i || l == i+1 {
				continue
			}
			c := 2 * diffY * y[l] / (k * k)
			var w float64
			if l < i {
				w = WeightThresholdWithPrefixMember(n, tp.K, i)
			} else {
				w = WeightThresholdWithSuffixMember(n, tp.K, l)
			}
			terms = append(terms, PiecewiseTerm{C: c, WeightSum: w})
		}
		sv[order[i-1]] = sv[order[i]] + PiecewiseDifference(n, terms)
	}
	return sv
}
