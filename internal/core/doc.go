// Package core implements the paper's valuation algorithms: the exact
// O(N log N) Shapley value for unweighted KNN classification (Theorem 1,
// Algorithm 1) and regression (Theorem 6), the truncated (ε,0)-approximation
// (Theorem 2) and its sublinear LSH-backed variant (Theorem 4), exact
// polynomial algorithms for weighted KNN (Theorem 7) and
// multiple-data-per-curator games (Theorem 8), the composite games that value
// the analyst alongside the curators (Theorems 9–12), the improved
// Monte-Carlo estimator with heap-incremental utilities and the Bennett
// permutation bound (Theorem 5, Algorithm 2), and the baseline Monte-Carlo
// estimator of Section 2.2.
//
// All functions operate on knn.TestPoint values (per-query precomputed
// distances and responses); multi-test-point Shapley values are averages of
// single-test-point values by the additivity property (Eq. 8).
//
// One convention note: the paper's regression derivations implicitly take
// ν(∅) = 0, while Eq. (25) evaluated literally on the empty set gives
// ν(∅) = −y_test². This package uses the literal Eq. (25) everywhere (so
// group rationality Σs_i = ν(I) − ν(∅) holds against the same utility the
// Monte-Carlo estimators see) and therefore adds the constant y_test²/N to
// the paper's Eq. (62) base case; pairwise differences are unaffected.
package core
