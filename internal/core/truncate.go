package core

import (
	"fmt"
	"math"

	"knnshapley/internal/knn"
)

// KStar returns K* = max{K, ⌈1/eps⌉}, the number of nearest neighbors whose
// Shapley values must be computed exactly for an (eps, 0)-approximation
// (Theorem 2): beyond rank K* the true |s| is below min(1/i, 1/K) ≤ eps.
func KStar(k int, eps float64) int {
	if eps <= 0 {
		panic(fmt.Sprintf("core: eps = %v, want positive", eps))
	}
	ks := int(math.Ceil(1 / eps))
	if k > ks {
		ks = k
	}
	return ks
}

// TruncatedClassSV computes the (eps, 0)-approximate Shapley values of
// Theorem 2 for a single test point: values of all but the K* nearest
// neighbors are set to zero, and the exact recursion runs over the K*
// nearest. The result preserves the exact value ranking within the K*
// nearest neighbors (ŝ_i − ŝ_{i+1} = s_i − s_{i+1} for i ≤ K*−1).
func TruncatedClassSV(tp *knn.TestPoint, eps float64) []float64 {
	sv := make([]float64, tp.N())
	truncatedClassSVInto(tp, eps, NewScratch(), sv)
	return sv
}

// truncatedClassSVInto is the scratch-aware Theorem 2 truncation writing
// into a zeroed dst of length tp.N().
func truncatedClassSVInto(tp *knn.TestPoint, eps float64, s *Scratch, dst []float64) {
	requireKind(tp, knn.UnweightedClass)
	n := tp.N()
	kStar := KStar(tp.K, eps)
	var ranking []int
	if kStar < n {
		// Only the K* nearest neighbors get nonzero values, so partial
		// selection replaces the full argsort: the K*-prefix of the α
		// ordering is all the recursion consults.
		ranking = s.TopKOf(tp, kStar)
	} else {
		ranking = s.OrderOf(tp)
	}
	correct := s.Bools(len(ranking))
	for rank, id := range ranking {
		correct[rank] = tp.Correct[id]
	}
	truncatedFromRankingInto(ranking, correct, n, tp.K, eps, dst)
}

// TruncatedClassSVMulti averages TruncatedClassSV over test points through
// the shared Engine.
func TruncatedClassSVMulti(tps []*knn.TestPoint, eps float64, opts Options) []float64 {
	if len(tps) == 0 {
		return nil
	}
	return mustRun(tps, opts, TruncatedClassKernel{N: tps[0].N(), Eps: eps})
}

// TruncatedFromRanking runs the Theorem 2 recursion given an externally
// retrieved neighbor ranking (training indices by ascending distance, e.g.
// from an LSH or other ANN index) and per-rank correctness indicators. n is
// the full training-set size; unranked points keep value zero. This is the
// building block behind both the LSH valuer and the Figure 9 sweeps.
func TruncatedFromRanking(ranking []int, correct []bool, n, k int, eps float64) []float64 {
	return truncatedFromRanking(ranking, correct, n, k, eps)
}

// TruncatedFromRankingInto is TruncatedFromRanking writing into a zeroed sv
// of length n, for callers that reuse one buffer per test point (the cluster
// coordinator's merge loop). Only the first K* ranking entries are consulted
// when the ranking extends past K*, so a merged ranking longer than the
// single-node K* prefix — the shape a k-way shard merge produces — runs the
// identical recursion over the identical prefix.
func TruncatedFromRankingInto(ranking []int, correct []bool, n, k int, eps float64, sv []float64) {
	truncatedFromRankingInto(ranking, correct, n, k, eps, sv)
}

// truncatedFromRanking runs the Theorem 2 recursion given the neighbor
// ranking (training indices by ascending distance; only the first K* entries
// are consulted) and the per-rank correctness indicators. n is the full
// training-set size; ranking may be shorter than n (e.g. LSH retrieval), in
// which case every unranked point keeps value zero.
func truncatedFromRanking(ranking []int, correct []bool, n, k int, eps float64) []float64 {
	sv := make([]float64, n)
	truncatedFromRankingInto(ranking, correct, n, k, eps, sv)
	return sv
}

// truncatedFromRankingInto is truncatedFromRanking writing into a zeroed sv
// of length n.
func truncatedFromRankingInto(ranking []int, correct []bool, n, k int, eps float64, sv []float64) {
	if len(ranking) == 0 {
		return
	}
	kStar := KStar(k, eps)
	limit := min(len(ranking), n)
	if kStar >= limit {
		// Degenerate truncation: every ranked point is within K*, so run the
		// full Theorem 1 recursion over the ranked prefix with the exact
		// base case when the prefix covers the whole training set.
		last := limit - 1
		if limit == n {
			sv[ranking[last]] = ind(correct[last]) / float64(n)
		} else {
			sv[ranking[last]] = 0
		}
		recurseUp(sv, ranking, correct, k, last)
		return
	}
	// ŝ_{α_i} = 0 for i ≥ K* (1-based: rank index kStar-1 in 0-based terms
	// is the K*-th neighbor and is the zero base of the recursion).
	sv[ranking[kStar-1]] = 0
	recurseUp(sv, ranking, correct, k, kStar-1)
}

// recurseUp applies the Theorem 1 difference recursion from 0-based rank
// `from` down to rank 0, assuming sv at ranking[from] is already set.
func recurseUp(sv []float64, ranking []int, correct []bool, k, from int) {
	for r := from; r >= 1; r-- {
		i := r // 1-based rank of the nearer point is r, since ranks are r and r+1
		cur, next := ranking[r-1], ranking[r]
		minKi := float64(min(k, i))
		sv[cur] = sv[next] + (ind(correct[r-1])-ind(correct[r]))/float64(k)*minKi/float64(i)
	}
}
