package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/game"
	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

// randomClassTP builds a random single-test-point classification instance.
func randomClassTP(n, classes, k int, rng *rand.Rand) *knn.TestPoint {
	X := make([][]float64, n)
	labels := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		labels[i] = rng.IntN(classes)
	}
	q := []float64{rng.Float64() * 10, rng.Float64() * 10}
	return knn.BuildTestPoint(knn.UnweightedClass, k, nil, vec.L2, X, labels, nil, q, rng.IntN(classes), 0)
}

// randomRegressTP builds a random single-test-point regression instance.
func randomRegressTP(n, k int, rng *rand.Rand) *knn.TestPoint {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		y[i] = rng.NormFloat64() * 2
	}
	q := []float64{rng.Float64() * 10, rng.Float64() * 10}
	return knn.BuildTestPoint(knn.UnweightedRegress, k, nil, vec.L2, X, nil, y, q, 0, rng.NormFloat64())
}

// tpGame adapts a TestPoint to the brute-force game oracle.
func tpGame(tp *knn.TestPoint) game.Utility {
	return game.Func{Players: tp.N(), F: tp.SubsetUtility}
}

func assertClose(t *testing.T, got, want []float64, tol float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", msg, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: sv[%d] = %v want %v (diff %v)\n got: %v\nwant: %v",
				msg, i, got[i], want[i], got[i]-want[i], got, want)
		}
	}
}

// Theorem 1 must agree with the 2^N brute-force Shapley enumeration.
func TestExactClassSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.IntN(9)
		k := 1 + rng.IntN(4)
		classes := 2 + rng.IntN(3)
		tp := randomClassTP(n, classes, k, rng)
		got := ExactClassSV(tp)
		want := game.ExactShapley(tpGame(tp))
		assertClose(t, got, want, 1e-9, "exact class")
	}
}

// Theorem 6 must agree with brute force, including the ν(∅) correction.
func TestExactRegressSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(202, 2))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.IntN(9)
		k := 1 + rng.IntN(4)
		tp := randomRegressTP(n, k, rng)
		got := ExactRegressSV(tp)
		want := game.ExactShapley(tpGame(tp))
		assertClose(t, got, want, 1e-8, "exact regress")
	}
}

// Group rationality: Σ s_i = ν(I) − ν(∅).
func TestExactSVGroupRationality(t *testing.T) {
	rng := rand.New(rand.NewPCG(303, 3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(40)
		k := 1 + rng.IntN(5)
		tpC := randomClassTP(n, 3, k, rng)
		svC := ExactClassSV(tpC)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		if got, want := vec.Sum(svC), tpC.SubsetUtility(all)-tpC.EmptyUtility(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("class efficiency: Σ=%v want %v (n=%d k=%d)", got, want, n, k)
		}
		tpR := randomRegressTP(n, k, rng)
		svR := ExactRegressSV(tpR)
		if got, want := vec.Sum(svR), tpR.SubsetUtility(all)-tpR.EmptyUtility(); math.Abs(got-want) > 1e-8 {
			t.Fatalf("regress efficiency: Σ=%v want %v (n=%d k=%d)", got, want, n, k)
		}
	}
}
