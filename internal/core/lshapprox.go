package core

import (
	"context"
	"fmt"
	"math/rand/v2"

	"knnshapley/internal/dataset"
	"knnshapley/internal/lsh"
)

// LSHConfig configures the sublinear (eps, delta)-approximation of
// Theorem 4.
type LSHConfig struct {
	// K is the KNN parameter of the utility.
	K int
	// Eps is the target max-error of the Shapley approximation.
	Eps float64
	// Delta is the allowed failure probability of the underlying
	// K*-nearest-neighbor retrieval.
	Delta float64
	// Alpha scales the number of hash bits per table (Section 6.1 tunes it
	// per dataset; 1 is a sensible default).
	Alpha float64
	// MaxTables caps the table count on low-contrast data (0 = 512).
	MaxTables int
	// Seed drives index construction and tuning samples.
	Seed uint64
	// Workers bounds the test-point fan-out (0 = GOMAXPROCS).
	Workers int
}

func (c LSHConfig) withDefaults() LSHConfig {
	if c.Alpha <= 0 {
		c.Alpha = 1
	}
	if c.MaxTables <= 0 {
		c.MaxTables = 512
	}
	return c
}

// LSHValuer computes approximate Shapley values for unweighted KNN
// classification by retrieving only the K* = max{K, ⌈1/Eps⌉} nearest
// neighbors per test point from a p-stable LSH index (Theorems 2–4), instead
// of sorting the full training set. Build once, then value any number of
// (possibly streaming) test points.
type LSHValuer struct {
	cfg   LSHConfig
	train *dataset.Dataset
	index *lsh.Index
	tuned lsh.Tuned
	kStar int
}

// NewLSHValuer tunes LSH parameters on the training set and builds the
// index.
func NewLSHValuer(train *dataset.Dataset, cfg LSHConfig) (*LSHValuer, error) {
	cfg = cfg.withDefaults()
	if cfg.K <= 0 || cfg.Eps <= 0 || cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("core: invalid LSH config %+v", cfg)
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.IsRegression() {
		return nil, fmt.Errorf("core: the LSH approximation applies to classification only (Section 3.2)")
	}
	kStar := KStar(cfg.K, cfg.Eps)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x94d049bb133111eb))
	tuned := lsh.Tune(train.X, train.X, kStar, cfg.Delta, cfg.Alpha, cfg.MaxTables, cfg.Seed, rng)
	index, err := lsh.Build(train.X, tuned.Params)
	if err != nil {
		return nil, err
	}
	return &LSHValuer{cfg: cfg, train: train, index: index, tuned: tuned, kStar: kStar}, nil
}

// Tuned reports the selected LSH parameters and estimated contrast.
func (v *LSHValuer) Tuned() lsh.Tuned { return v.tuned }

// KStar returns the retrieval depth max{K, ⌈1/Eps⌉}.
func (v *LSHValuer) KStar() int { return v.kStar }

// ValueOne returns the approximate Shapley values for a single test query:
// the K* retrieved neighbors carry the Theorem 2 recursion, everyone else
// gets zero.
func (v *LSHValuer) ValueOne(q []float64, label int) []float64 {
	sv := make([]float64, v.train.N())
	v.valueOneInto(q, label, NewScratch(), sv)
	return sv
}

// valueOneInto is the scratch-aware ValueOne writing into a zeroed dst.
func (v *LSHValuer) valueOneInto(q []float64, label int, s *Scratch, dst []float64) {
	res := v.index.Query(q, v.kStar)
	correct := s.Bools(len(res.IDs))
	for r, id := range res.IDs {
		correct[r] = v.train.Labels[id] == label
	}
	truncatedFromRankingInto(res.IDs, correct, v.train.N(), v.cfg.K, v.cfg.Eps, dst)
}

// Value averages ValueOne over a test set (Eq. 8 / Theorem 4), streaming
// the queries through the shared Engine; a canceled ctx aborts within one
// engine batch.
func (v *LSHValuer) Value(ctx context.Context, test *dataset.Dataset) ([]float64, error) {
	return v.ValueEngine(ctx, test, EngineConfig{Workers: v.cfg.Workers})
}

// ValueEngine is Value with an explicit engine configuration, for callers
// that want a Progress callback or a custom batch size on the query stream.
func (v *LSHValuer) ValueEngine(ctx context.Context, test *dataset.Dataset, ec EngineConfig) ([]float64, error) {
	if test.IsRegression() {
		return nil, fmt.Errorf("core: classification test set required")
	}
	if test.Dim() != v.train.Dim() {
		return nil, fmt.Errorf("core: test dim %d != train dim %d", test.Dim(), v.train.Dim())
	}
	if test.N() == 0 {
		return make([]float64, v.train.N()), nil
	}
	if ec.Workers == 0 {
		ec.Workers = v.cfg.Workers
	}
	eng := NewEngine[labeledQuery](ec)
	return eng.Run(ctx, &querySource{test: test}, queryKernel{n: v.train.N(), value: v.valueOneInto})
}
