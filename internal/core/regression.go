package core

import (
	"knnshapley/internal/knn"
)

// ExactRegressSV computes the exact Shapley value of every training point
// for the unweighted KNN regression utility (Eq. 25) of a single test point,
// via the Theorem 6 recursion evaluated in O(N) with prefix/suffix sums
// (after the O(N log N) distance sort).
//
// Base-case note: Eq. (62) is derived with the convention ν(∅) = 0, while
// Eq. (25) evaluated on the empty set gives ν(∅) = −y_test²; we add
// y_test²/N so the values satisfy group rationality against the literal
// Eq. (25) utility (see the package comment).
func ExactRegressSV(tp *knn.TestPoint) []float64 {
	sv := make([]float64, tp.N())
	exactRegressSVInto(tp, NewScratch(), sv)
	return sv
}

// exactRegressSVInto is the scratch-aware Theorem 6 recursion writing into a
// zeroed dst of length tp.N().
func exactRegressSVInto(tp *knn.TestPoint, s *Scratch, dst []float64) {
	requireKind(tp, knn.UnweightedRegress)
	n := tp.N()
	if n == 0 {
		return
	}
	order := s.OrderOf(tp)
	k := float64(tp.K)
	t := tp.YTest
	// y[r] is the target of the r-th nearest neighbor, 1-based.
	y := s.Floats(0, n+1)
	y[0] = 0
	for r, id := range order {
		y[r+1] = tp.Y[id]
	}

	if n == 1 {
		// s_1 = ν({1}) − ν(∅) directly.
		d := y[1]/k - t
		dst[order[0]] = -d*d + t*t
		return
	}

	// Base case s_{α_N}.
	var sumOthers float64
	for r := 1; r < n; r++ {
		sumOthers += y[r]
	}
	nf := float64(n)
	yn := y[n]
	var base float64
	if n > tp.K {
		// Eq. (62) plus the ν(∅) correction.
		dN := yn/k - t
		base = -(k-1)/(nf*k)*yn*(yn/k-2*t+sumOthers/(nf-1)) - dN*dN/nf + t*t/nf
	} else {
		// N <= K: every coalition keeps all its points, so averaging the
		// marginal −(y_N/K)² − (2y_N/K)·((1/K)Σ_{l∈S}y_l − t) over coalition
		// sizes gives Σ_{l∈S}y_l → Σ_{l≠N}y_l/2 and
		// s_{α_N} = −(y_N/K)² − (2y_N/K)·(Σ_{l≠N}y_l/(2K) − t).
		base = -(yn/k)*(yn/k) - 2*yn/k*(sumOthers/(2*k)-t)
	}
	dst[order[n-1]] = base

	// Prefix sums P[r] = Σ_{l<=r} y_l and suffix sums W[r] = Σ_{l>=r} w_l·y_l
	// with w_l = min(K,l−1)·min(K−1,l−2)/((l−1)(l−2)) (zero for l < 3).
	prefix := s.Floats(1, n+2)
	prefix[0] = 0
	for r := 1; r <= n; r++ {
		prefix[r] = prefix[r-1] + y[r]
	}
	prefix[n+1] = 0
	suffix := s.Floats(2, n+3)
	suffix[n+1], suffix[n+2] = 0, 0
	for r := n; r >= 3; r-- {
		lf := float64(r)
		w := float64(min(tp.K, r-1)) * float64(min(tp.K-1, r-2)) / ((lf - 1) * (lf - 2))
		suffix[r] = suffix[r+1] + w*y[r]
	}

	// Recursion Eq. (63)/(64): s_{α_i} = s_{α_{i+1}} + (1/K)(y_{i+1}−y_i)·
	// (min(K,i)/i)·((1/K)·Σ_l A_i^(l)·y_l − 2·y_test), with the A-weighted
	// sum assembled from the prefix/suffix accumulators.
	for i := n - 1; i >= 1; i-- {
		fi := float64(i)
		minKi := float64(min(tp.K, i))
		var aSum float64
		if i >= 2 {
			aSum += float64(min(tp.K-1, i-1)) / (fi - 1) * prefix[i-1]
		}
		aSum += y[i] + y[i+1]
		if i+2 <= n {
			aSum += fi / minKi * suffix[i+2]
		}
		delta := (y[i+1] - y[i]) / k * (minKi / fi) * (aSum/k - 2*t)
		dst[order[i-1]] = dst[order[i]] + delta
	}
}

// ExactRegressSVMulti averages ExactRegressSV over test points (Eq. 8)
// through the shared Engine.
func ExactRegressSVMulti(tps []*knn.TestPoint, opts Options) []float64 {
	if len(tps) == 0 {
		return nil
	}
	return mustRun(tps, opts, ExactRegressKernel{N: tps[0].N()})
}
