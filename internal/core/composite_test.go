package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/game"
	"knnshapley/internal/knn"
)

// compositeOracle brute-forces the composite game of Eq. (28) over N+1
// players and returns (seller values, analyst value).
func compositeOracle(tp *knn.TestPoint) ([]float64, float64) {
	c := game.Composite{Base: tpGame(tp)}
	sv := game.ExactShapley(c)
	return sv[:tp.N()], sv[tp.N()]
}

func TestCompositeClassSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(707, 7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(8)
		k := 1 + rng.IntN(4)
		tp := randomClassTP(n, 3, k, rng)
		got := CompositeClassSV(tp)
		wantSellers, wantAnalyst := compositeOracle(tp)
		assertClose(t, got.Sellers, wantSellers, 1e-9, "composite class sellers")
		if math.Abs(got.Analyst-wantAnalyst) > 1e-9 {
			t.Fatalf("analyst = %v want %v (n=%d k=%d)", got.Analyst, wantAnalyst, n, k)
		}
	}
}

func TestCompositeRegressSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(808, 8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(8)
		k := 1 + rng.IntN(4)
		tp := randomRegressTP(n, k, rng)
		got := CompositeRegressSV(tp)
		wantSellers, wantAnalyst := compositeOracle(tp)
		assertClose(t, got.Sellers, wantSellers, 1e-8, "composite regress sellers")
		if math.Abs(got.Analyst-wantAnalyst) > 1e-8 {
			t.Fatalf("analyst = %v want %v (n=%d k=%d)", got.Analyst, wantAnalyst, n, k)
		}
	}
}

func TestCompositeWeightedSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(909, 9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(7)
		k := 1 + rng.IntN(3)
		for _, regression := range []bool{false, true} {
			tp := randomWeightedTP(n, k, regression, rng)
			got := CompositeWeightedSV(tp)
			wantSellers, wantAnalyst := compositeOracle(tp)
			assertClose(t, got.Sellers, wantSellers, 1e-8, "composite weighted sellers")
			if math.Abs(got.Analyst-wantAnalyst) > 1e-8 {
				t.Fatalf("analyst = %v want %v", got.Analyst, wantAnalyst)
			}
		}
	}
}

// Eq. (88)/(89): each seller's composite value is at most half its data-only
// value difference structure; in particular the analyst takes at least half
// of the total utility on classification games.
func TestCompositeAnalystTakesMajorityShare(t *testing.T) {
	rng := rand.New(rand.NewPCG(1010, 10))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.IntN(40)
		k := 1 + rng.IntN(5)
		tp := randomClassTP(n, 3, k, rng)
		res := CompositeClassSV(tp)
		total := tp.FullUtility()
		if total <= 0 {
			continue
		}
		if res.Analyst < total/2-1e-9 {
			t.Fatalf("analyst %v < half of total %v (n=%d k=%d)", res.Analyst, total, n, k)
		}
	}
}

// The composite seller recursion is the data-only recursion damped by
// (min{i,K}+1)/(2(i+1)) (Eq. 89) — verify the ratio of differences.
func TestCompositeVsDataOnlyDifferenceRatio(t *testing.T) {
	rng := rand.New(rand.NewPCG(1111, 11))
	tp := randomClassTP(30, 2, 3, rng)
	data := ExactClassSV(tp)
	comp := CompositeClassSV(tp).Sellers
	order := tp.Order()
	for r := 0; r < len(order)-1; r++ {
		i := r + 1 // 1-based rank
		dd := data[order[r]] - data[order[r+1]]
		dc := comp[order[r]] - comp[order[r+1]]
		if math.Abs(dd) < 1e-12 {
			if math.Abs(dc) > 1e-12 {
				t.Fatalf("rank %d: composite difference %v for zero data-only difference", i, dc)
			}
			continue
		}
		wantRatio := float64(min(tp.K, i)+1) / (2 * float64(i+1))
		if got := dc / dd; math.Abs(got-wantRatio) > 1e-9 {
			t.Fatalf("rank %d: ratio %v want %v", i, got, wantRatio)
		}
	}
}

func TestCompositeEmptyInstance(t *testing.T) {
	tp := &knn.TestPoint{Kind: knn.UnweightedClass, K: 1}
	res := CompositeClassSV(tp)
	if len(res.Sellers) != 0 || res.Analyst != 0 {
		t.Fatalf("empty composite = %+v", res)
	}
}
