package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The Appendix F engine must re-derive Theorem 1 exactly.
func TestPiecewiseClassMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3131, 31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(40)
		k := 1 + rng.IntN(5)
		tp := randomClassTP(n, 3, k, rng)
		got := PiecewiseClassSV(tp)
		want := ExactClassSV(tp)
		assertClose(t, got, want, 1e-12, "piecewise class")
	}
}

// The Appendix F engine must re-derive Theorem 6 (pairwise differences are
// rebuilt from the generic groups; only the base case is shared).
func TestPiecewiseRegressMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3232, 32))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(25)
		k := 1 + rng.IntN(4)
		tp := randomRegressTP(n, k, rng)
		got := PiecewiseRegressSV(tp)
		want := ExactRegressSV(tp)
		assertClose(t, got, want, 1e-8, "piecewise regress")
	}
}

func TestWeightThresholdClosedForm(t *testing.T) {
	// Direct summation oracle: Σ_k Σ_{m<=K-1} C(f,m)C(n-2-f,k-m)/C(n-2,k).
	for _, tc := range []struct{ n, k, f int }{
		{10, 2, 4}, {10, 1, 0}, {12, 3, 9}, {8, 5, 3}, {9, 2, 0},
	} {
		var oracle float64
		v := tc.n - 2 - tc.f
		for k := 0; k <= tc.n-2; k++ {
			den := binomFloat(tc.n-2, k)
			for m := 0; m <= min(tc.k-1, k); m++ {
				oracle += binomFloat(tc.f, m) * binomFloat(v, k-m) / den
			}
		}
		got := WeightThreshold(tc.n, tc.k, tc.f)
		if math.Abs(got-oracle) > 1e-9 {
			t.Fatalf("WeightThreshold(%+v) = %v, oracle %v", tc, got, oracle)
		}
	}
}

func TestWeightPinnedMemberClosedForms(t *testing.T) {
	// Oracle for the prefix-member group with front(i): pinned element is
	// one of the i-2 front points beyond the pair... the group of Eq. (66):
	// count over S containing the pinned l and with |S∩front| <= K-1, where
	// the pinned element itself is in the front. Direct summation per
	// Theorem 6's proof (Eq. 67).
	n, k := 12, 3
	for i := 3; i <= n-1; i++ {
		var oracle float64
		for kk := 0; kk <= n-2; kk++ {
			den := binomFloat(n-2, kk)
			for m := 0; m <= min(k-2, kk-1); m++ {
				oracle += binomFloat(i-2, m) * binomFloat(n-i-1, kk-m-1) / den
			}
		}
		got := WeightThresholdWithPrefixMember(n, k, i)
		if math.Abs(got-oracle) > 1e-9 {
			t.Fatalf("prefix member i=%d: %v vs oracle %v", i, got, oracle)
		}
	}
	for l := 4; l <= n; l++ {
		i := 2 // suffix case needs l >= i+2
		_ = i
		var oracle float64
		for kk := 0; kk <= n-2; kk++ {
			den := binomFloat(n-2, kk)
			for m := 0; m <= min(k-2, kk-1); m++ {
				oracle += binomFloat(l-3, m) * binomFloat(n-l, kk-m-1) / den
			}
		}
		got := WeightThresholdWithSuffixMember(n, k, l)
		if math.Abs(got-oracle) > 1e-9 {
			t.Fatalf("suffix member l=%d: %v vs oracle %v", l, got, oracle)
		}
	}
}

func TestPiecewiseDifferenceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n < 2 accepted")
		}
	}()
	PiecewiseDifference(1, nil)
}
