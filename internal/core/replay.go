// Flip-run replay: re-evaluating the Theorem 1 recursion from a cached
// neighbor ranking without touching distances.
//
// The recursion s_{α_i} = s_{α_{i+1}} + Δ_i changes value only where the
// correctness indicator flips between adjacent ranks (Δ_i = 0 elsewhere, and
// the IEEE-754 expression (0−0)/K·min(K,i)/i is exactly +0, so skipping it is
// bit-free). A ranking therefore splits into runs of constant Shapley value
// separated by "flips", and a full replay is: walk the flips from the tail,
// scatter-add the run's shared value into the accumulator, then step the
// value across the flip. With ~2·p·(1−p)·N flips for correctness density p,
// the per-element work is one load, one masked index and one add — about 6×
// cheaper than recomputing distances, which is what makes O(ΔN) incremental
// re-valuation worthwhile at all.
//
// The flip-crossing term (±1)/K · min(K,i)/i depends only on (K, i, sign) —
// not on N or the data — so it is precomputed once per K into a shared table
// (Terms). One table serves both signs because IEEE-754 negation is exact:
// -(1/K·m/i) has the same bits as (-1)/K·m/i, the sequence recurseUp
// evaluates for a downward flip.
//
// Rankings arrive in the cluster wire packing: one uint32 per rank holding
// the training index with CorrectBit flagging label agreement. The kernels
// use unsafe pointer arithmetic in the scatter loop; callers must uphold the
// invariant — checked once at cache-entry construction, not per replay —
// that every packed index masks to < len(acc) and every flip rank lies in
// (0, n).
package core

import (
	"sync"
	"unsafe"
)

// CorrectBit flags a packed ranking entry whose training label matches the
// test point's. It caps usable training indices at 2³¹, the same ceiling the
// dataset and shard-report codecs enforce.
const CorrectBit = uint32(1) << 31

// termsMaxK bounds how many distinct K tables are retained; requests churn
// through at most a handful of K values in practice, and the bound keeps a
// hostile K sequence from growing the cache without limit.
const termsMaxK = 8

var (
	termsMu  sync.Mutex
	termsByK = make(map[int][]float64)
)

// Terms returns the flip-crossing term table for k, valid for ranks up to at
// least n: Terms(k, n)[i] is the exact recurseUp difference term at 1-based
// rank i for an upward correctness flip (nearer point correct), evaluated in
// the identical operation order, so sv += table[i] (or sv += -table[i] for a
// downward flip) reproduces the recursion bit for bit. Tables grow on demand
// and are shared across goroutines; the returned slice is immutable.
func Terms(k, n int) []float64 {
	termsMu.Lock()
	defer termsMu.Unlock()
	t := termsByK[k]
	if len(t) > n {
		return t
	}
	if len(termsByK) >= termsMaxK {
		for ok := range termsByK {
			if ok != k {
				delete(termsByK, ok)
				break
			}
		}
	}
	nt := make([]float64, n+1)
	copy(nt, t)
	for i := max(len(t), 1); i <= n; i++ {
		minKi := float64(min(k, i))
		nt[i] = 1.0 / float64(k) * minKi / float64(i)
	}
	termsByK[k] = nt
	return nt
}

// FlipsOfPacked returns the ascending ranks r in (0, len(l)) at which the
// correctness bit of the packed ranking changes between ranks r−1 and r.
func FlipsOfPacked(l []uint32) []int32 {
	var fl []int32
	for r := 1; r < len(l); r++ {
		if (l[r-1]^l[r])&CorrectBit != 0 {
			fl = append(fl, int32(r))
		}
	}
	return fl
}

// TrimFlips returns the prefix of ascending flips strictly below limit — the
// subset a truncated replay over ranks [0, limit) consults.
func TrimFlips(flips []int32, limit int) []int32 {
	lo, hi := 0, len(flips)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(flips[mid]) < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return flips[:lo]
}

// ReplayPacked replays the exact recursion over a full packed ranking,
// adding each point's value into acc (the per-test accumulate of the merge
// loop). firstDenom is the base-case denominator: max(n, k) for the exact
// method, n for the truncated method's full-coverage case. terms must come
// from Terms(k, n) for the recursion's k. Bit-identical to running
// ExactClassFromRankingInto into a zeroed vector and adding it to acc.
func ReplayPacked(l []uint32, flips []int32, firstDenom float64, terms, acc []float64) {
	n := len(l)
	if n == 0 {
		return
	}
	sv := 0.0
	if l[n-1]&CorrectBit != 0 {
		sv = 1.0
	}
	sv /= firstDenom
	replayRuns(l, flips, n, sv, terms, acc)
}

// ReplayPackedPrefix replays the truncated recursion when K* < n: ranks at
// and beyond limit keep value zero, the value at rank limit−1 is the zero
// base, and the recursion walks up from there. flips must already be trimmed
// below limit (TrimFlips).
func ReplayPackedPrefix(l []uint32, flips []int32, limit int, terms, acc []float64) {
	if len(l) == 0 || limit <= 0 {
		return
	}
	replayRuns(l, flips, min(limit, len(l)), 0, terms, acc)
}

// replayRuns is the shared scatter kernel: ranks [0, hi) of l split into
// constant-value runs by flips (ascending, all < hi), walked tail to head
// starting at value sv. Runs whose value is zero are skipped — the exact
// computation writes +0 there and x + (+0) preserves x's bits for every x
// the accumulate can hold (sv sums never produce −0: IEEE addition yields −0
// only from two −0 operands).
func replayRuns(l []uint32, flips []int32, hi int, sv float64, terms, acc []float64) {
	ap := unsafe.Pointer(&acc[0])
	lp := unsafe.Pointer(&l[0])
	tp := unsafe.Pointer(&terms[0])
	for fi := len(flips) - 1; fi >= -1; fi-- {
		lo := 0
		if fi >= 0 {
			lo = int(flips[fi])
		}
		if sv != 0 {
			for r := lo; r < hi; r++ {
				v := *(*uint32)(unsafe.Add(lp, uintptr(r)*4))
				p := (*float64)(unsafe.Add(ap, uintptr(v&^CorrectBit)*8))
				*p += sv
			}
		}
		if lo == 0 {
			return
		}
		cur := *(*uint32)(unsafe.Add(lp, uintptr(lo-1)*4))
		term := *(*float64)(unsafe.Add(tp, uintptr(lo)*8))
		if cur&CorrectBit == 0 {
			term = -term
		}
		sv += term
		hi = lo
	}
}

// ReplayPackedOverlay is ReplayPacked over a patched ranking: base holds the
// parent's packed list and (opos, oidx) an insertion overlay — opos[j] is the
// strictly ascending child rank of inserted element oidx[j], so child rank r
// not in opos maps to base[r − |{opos < r}|]. flips are in child coordinates
// over the spliced sequence of length n = len(base) + len(opos).
func ReplayPackedOverlay(base []uint32, opos []int32, oidx []uint32, flips []int32, firstDenom float64, terms, acc []float64) {
	n := len(base) + len(opos)
	if n == 0 {
		return
	}
	m := len(opos)
	var tail uint32
	if m > 0 && int(opos[m-1]) == n-1 {
		tail = oidx[m-1]
	} else {
		tail = base[n-1-m]
	}
	sv := 0.0
	if tail&CorrectBit != 0 {
		sv = 1.0
	}
	sv /= firstDenom
	replayRunsOverlay(base, opos, oidx, flips, n, sv, terms, acc)
}

// ReplayPackedOverlayPrefix is ReplayPackedPrefix over a patched ranking;
// flips must be trimmed below limit.
func ReplayPackedOverlayPrefix(base []uint32, opos []int32, oidx []uint32, flips []int32, limit int, terms, acc []float64) {
	n := len(base) + len(opos)
	if n == 0 || limit <= 0 {
		return
	}
	replayRunsOverlay(base, opos, oidx, flips, min(limit, n), 0, terms, acc)
}

// replayRunsOverlay is replayRuns with an insertion overlay. Between
// insertions the child-to-base offset is constant, so the common path is the
// plain scatter with a shifted base window; each insertion inside a run
// splits the scatter once and contributes its own element. Runs still skip
// when sv is zero, but the insertion cursor always advances so the offset
// stays right.
func replayRunsOverlay(base []uint32, opos []int32, oidx []uint32, flips []int32, hi int, sv float64, terms, acc []float64) {
	oi := len(opos)
	for oi > 0 && int(opos[oi-1]) >= hi {
		oi--
	}
	for fi := len(flips) - 1; fi >= -1; fi-- {
		lo := 0
		if fi >= 0 {
			lo = int(flips[fi])
		}
		h := hi
		for oi > 0 && int(opos[oi-1]) >= lo {
			p := int(opos[oi-1])
			if sv != 0 {
				scatterRange(base[p+1-oi:h-oi], sv, acc)
				acc[oidx[oi-1]&^CorrectBit] += sv
			}
			oi--
			h = p
		}
		if sv != 0 {
			scatterRange(base[lo-oi:h-oi], sv, acc)
		}
		if lo == 0 {
			return
		}
		var cur uint32
		if oi > 0 && int(opos[oi-1]) == lo-1 {
			cur = oidx[oi-1]
		} else {
			cur = base[lo-1-oi]
		}
		term := terms[lo]
		if cur&CorrectBit == 0 {
			term = -term
		}
		sv += term
		hi = lo
	}
}

// RunValues evaluates the recursion once per run instead of once per
// element: out[r] receives the Shapley value shared by every rank in run r,
// where run r spans ranks [flips[r-1], flips[r]) (run len(flips) is the
// tail). tailBit is the correctness bit of the last rank. The sv sequence —
// base case, then one ± term per flip walking tail to head — is the exact
// operation order of replayRuns, so the values are bit-identical; the flip
// direction needs no ranking lookup because correctness bits strictly
// alternate across runs (a flip is, by construction, a bit change).
func RunValues(flips []int32, tailBit bool, firstDenom float64, terms []float64, out []float64) {
	sv := 0.0
	if tailBit {
		sv = 1.0
	}
	sv /= firstDenom
	out[len(flips)] = sv
	bit := tailBit
	for fi := len(flips) - 1; fi >= 0; fi-- {
		bit = !bit // bit of run fi, which the crossing's sign reads
		term := terms[flips[fi]]
		if !bit {
			term = -term
		}
		sv += term
		out[fi] = sv
	}
}

// GatherRuns adds each element's run value into the accumulator: for every
// training index i, acc[i] += runvals[runOf[i]]. Together with RunValues
// this replaces the rank-order scatter of replayRuns for full replays: acc
// is walked sequentially and runvals is small enough to sit in cache, where
// the scatter's rank-order walk hits a cold accumulator line per element.
// Bit-identical because each index appears exactly once per ranking — the
// adds commute across distinct slots — and a +0 add (zero-valued or
// partially-covered runs) preserves every accumulator bit pattern the
// replay can produce (sums of sv terms are never −0). Covers indices
// [0, len(runOf)); acc may be longer (a patched replay's appended tail is
// added separately). Caller guarantees len(runOf) <= len(acc) and every
// runOf entry < len(runvals).
func GatherRuns(runOf []uint32, runvals, acc []float64) {
	n := len(runOf)
	if n == 0 {
		return
	}
	rp := unsafe.Pointer(&runOf[0])
	vp := unsafe.Pointer(&runvals[0])
	ap := unsafe.Pointer(&acc[0])
	for i := 0; i < n; i++ {
		r := *(*uint32)(unsafe.Add(rp, uintptr(i)*4))
		*(*float64)(unsafe.Add(ap, uintptr(i)*8)) += *(*float64)(unsafe.Add(vp, uintptr(r)*8))
	}
}

// RunOf builds the index→run-id table GatherRuns consumes from a packed
// ranking and its flip list: runOf[index at rank r] = number of flips at or
// below r. The table depends only on the ranking, so cache entries build it
// once and reuse it every replay.
func RunOf(l []uint32, flips []int32, runOf []uint32) {
	fi := 0
	for r, v := range l {
		for fi < len(flips) && int(flips[fi]) <= r {
			fi++
		}
		runOf[v&^CorrectBit] = uint32(fi)
	}
}

// scatterRange adds sv into acc at every packed index of seg.
func scatterRange(seg []uint32, sv float64, acc []float64) {
	if len(seg) == 0 {
		return
	}
	ap := unsafe.Pointer(&acc[0])
	lp := unsafe.Pointer(&seg[0])
	for r := 0; r < len(seg); r++ {
		v := *(*uint32)(unsafe.Add(lp, uintptr(r)*4))
		p := (*float64)(unsafe.Add(ap, uintptr(v&^CorrectBit)*8))
		*p += sv
	}
}
