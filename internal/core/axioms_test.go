package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

// Shapley axiom tests on the fast algorithms, at sizes far beyond what the
// brute-force oracle can check.

// Symmetry: two identical training points (same features, same label) must
// receive exactly the same value under every exact algorithm.
func TestSymmetryForDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(5151, 51))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.IntN(40)
		k := 1 + rng.IntN(5)
		tp := randomClassTP(n, 3, k, rng)
		// Duplicate point 0 into point 1 (feature-identical ⇒ equal dist).
		tp.Dist[1] = tp.Dist[0]
		tp.Correct[1] = tp.Correct[0]
		sv := ExactClassSV(tp)
		if math.Abs(sv[0]-sv[1]) > 1e-12 {
			t.Fatalf("duplicates valued differently: %v vs %v", sv[0], sv[1])
		}
		comp := CompositeClassSV(tp)
		if math.Abs(comp.Sellers[0]-comp.Sellers[1]) > 1e-12 {
			t.Fatalf("composite duplicates differ: %v vs %v", comp.Sellers[0], comp.Sellers[1])
		}
	}
}

func TestSymmetryForDuplicateRegressionPoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(5252, 52))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.IntN(30)
		k := 1 + rng.IntN(4)
		tp := randomRegressTP(n, k, rng)
		tp.Dist[1] = tp.Dist[0]
		tp.Y[1] = tp.Y[0]
		sv := ExactRegressSV(tp)
		if math.Abs(sv[0]-sv[1]) > 1e-9 {
			t.Fatalf("regression duplicates differ: %v vs %v", sv[0], sv[1])
		}
	}
}

// A farthest point with the same label as the runner-up carries the same
// value tail (the Theorem 1 recursion only moves on label changes) — and a
// point beyond rank K with a label agreeing with every nearer point is
// effectively null when all labels agree.
func TestUniformLabelsGiveUniformTail(t *testing.T) {
	rng := rand.New(rand.NewPCG(5353, 53))
	n, k := 50, 3
	X := make([][]float64, n)
	labels := make([]int, n) // all class 0
	for i := range X {
		X[i] = []float64{rng.Float64() * 10}
	}
	tp := knn.BuildTestPoint(knn.UnweightedClass, k, nil, vec.L2, X, labels, nil, []float64{5}, 0, 0)
	sv := ExactClassSV(tp)
	order := tp.Order()
	// With identical labels, every difference is zero: all points share
	// s = 1/N… specifically s_i = s_N = 1/N.
	for _, i := range order {
		if math.Abs(sv[i]-1.0/float64(n)) > 1e-12 {
			t.Fatalf("uniform-label SV not uniform: %v", sv[i])
		}
	}
}

// Additivity over test points: the multi-test value is the average of
// single-test values (Eq. 8) — checked via random convex splits.
func TestAdditivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 10 + rng.IntN(30)
		tps := []*knn.TestPoint{
			randomClassTP(n, 3, 2, rng),
			randomClassTP(n, 3, 2, rng),
		}
		// Make both share the same training geometry size (already do).
		multi := ExactClassSVMulti(tps, Options{Workers: 2})
		a := ExactClassSV(tps[0])
		b := ExactClassSV(tps[1])
		for i := range multi {
			if math.Abs(multi[i]-(a[i]+b[i])/2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Rank preservation (Theorem 1): a training point whose label matches the
// test label is never worth less than the next-farther point when that one
// mismatches.
func TestCorrectBeatsIncorrectNeighbor(t *testing.T) {
	rng := rand.New(rand.NewPCG(5454, 54))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.IntN(50)
		tp := randomClassTP(n, 1+rng.IntN(4), 3, rng)
		sv := ExactClassSV(tp)
		order := tp.Order()
		for r := 0; r+1 < n; r++ {
			a, b := order[r], order[r+1]
			if tp.Correct[a] && !tp.Correct[b] && sv[a] < sv[b]-1e-12 {
				t.Fatalf("correct nearer point valued below incorrect farther one: %v < %v", sv[a], sv[b])
			}
		}
	}
}

// K >= N degenerates gracefully: with every point always a neighbor, each
// correct point is worth 1/max(N,K) … specifically the recursion's
// differences still match brute force (covered elsewhere); here we check the
// closed-form tail for the all-correct case.
func TestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewPCG(5555, 55))
	n, k := 6, 9
	X := make([][]float64, n)
	labels := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
	}
	tp := knn.BuildTestPoint(knn.UnweightedClass, k, nil, vec.L2, X, labels, nil, []float64{0.5}, 0, 0)
	sv := ExactClassSV(tp)
	for i, v := range sv {
		if math.Abs(v-1.0/float64(k)) > 1e-12 {
			t.Fatalf("K>N all-correct: sv[%d] = %v want %v", i, v, 1.0/float64(k))
		}
	}
}
