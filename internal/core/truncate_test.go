package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/dataset"
	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
	"knnshapley/internal/vec"
)

func TestKStar(t *testing.T) {
	if got := KStar(5, 0.1); got != 10 {
		t.Fatalf("KStar(5, 0.1) = %d want 10", got)
	}
	if got := KStar(20, 0.1); got != 20 {
		t.Fatalf("KStar(20, 0.1) = %d want 20", got)
	}
	if got := KStar(1, 0.3); got != 4 {
		t.Fatalf("KStar(1, 0.3) = %d want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("eps <= 0 accepted")
		}
	}()
	KStar(1, 0)
}

// Theorem 2's contract: max_i |ŝ_i − s_i| ≤ eps, and the pairwise
// differences of the K* nearest match exactly.
func TestTruncatedClassSVErrorBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(2424, 24))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.IntN(100)
		k := 1 + rng.IntN(5)
		eps := []float64{0.05, 0.1, 0.3}[rng.IntN(3)]
		tp := randomClassTP(n, 3, k, rng)
		exact := ExactClassSV(tp)
		approx := TruncatedClassSV(tp, eps)
		if got := stats.MaxAbsDiff(exact, approx); got > eps+1e-12 {
			t.Fatalf("trial %d: max error %v > eps %v (n=%d k=%d)", trial, got, eps, n, k)
		}
		order := tp.Order()
		kStar := KStar(k, eps)
		for r := 0; r+1 < kStar-1 && r+1 < n; r++ {
			de := exact[order[r]] - exact[order[r+1]]
			da := approx[order[r]] - approx[order[r+1]]
			if math.Abs(de-da) > 1e-12 {
				t.Fatalf("difference at rank %d not preserved: %v vs %v", r+1, da, de)
			}
		}
	}
}

func TestTruncatedDegeneratesToExact(t *testing.T) {
	// K* >= N: truncation must reproduce the exact values bit-for-bit.
	rng := rand.New(rand.NewPCG(2525, 25))
	tp := randomClassTP(8, 2, 2, rng)
	exact := ExactClassSV(tp)
	approx := TruncatedClassSV(tp, 0.01) // K* = 100 > 8
	assertClose(t, approx, exact, 0, "degenerate truncation")
}

func TestTruncatedZeroBeyondKStar(t *testing.T) {
	rng := rand.New(rand.NewPCG(2626, 26))
	tp := randomClassTP(50, 3, 2, rng)
	eps := 0.2 // K* = 5
	approx := TruncatedClassSV(tp, eps)
	order := tp.Order()
	for r := KStar(2, eps) - 1; r < 50; r++ {
		if approx[order[r]] != 0 {
			t.Fatalf("rank %d beyond K* has value %v", r+1, approx[order[r]])
		}
	}
}

func TestLSHValuerMatchesTruncated(t *testing.T) {
	train := dataset.DeepLike(1200, 31)
	test := dataset.DeepLike(15, 32)
	cfg := LSHConfig{K: 2, Eps: 0.1, Delta: 0.1, Seed: 9}
	v, err := NewLSHValuer(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Value(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	tps, err := knn.BuildTestPoints(knn.UnweightedClass, 2, nil, vec.L2, train, test)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactClassSVMulti(tps, Options{})
	// (eps, delta) contract against the exact values; deep-like data has
	// high contrast so retrieval is near-perfect and the truncation error
	// dominates.
	if err := stats.MaxAbsDiff(got, exact); err > cfg.Eps {
		t.Fatalf("LSH max error %v > eps %v (tuned %+v)", err, cfg.Eps, v.Tuned())
	}
}

func TestLSHValuerStreaming(t *testing.T) {
	train := dataset.DeepLike(800, 33)
	v, err := NewLSHValuer(train, LSHConfig{K: 1, Eps: 0.2, Delta: 0.1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if v.KStar() != 5 {
		t.Fatalf("KStar = %d want 5", v.KStar())
	}
	// Sequential queries accumulate like an average.
	q := dataset.DeepLike(4, 34)
	acc := make([]float64, train.N())
	for i := range q.X {
		sv := v.ValueOne(q.X[i], q.Labels[i])
		vec.AXPY(acc, 1, sv)
	}
	vec.Scale(acc, 0.25)
	batch, err := v.Value(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, acc, batch, 1e-12, "streaming vs batch")
}

func TestLSHValuerValidation(t *testing.T) {
	train := dataset.MNISTLike(50, 1)
	if _, err := NewLSHValuer(train, LSHConfig{K: 0, Eps: 0.1, Delta: 0.1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewLSHValuer(train, LSHConfig{K: 1, Eps: 0, Delta: 0.1}); err == nil {
		t.Error("eps=0 accepted")
	}
	reg := dataset.Regression(dataset.RegressionConfig{N: 20, Dim: 4, Seed: 2})
	if _, err := NewLSHValuer(reg, LSHConfig{K: 1, Eps: 0.1, Delta: 0.1}); err == nil {
		t.Error("regression accepted")
	}
	v, err := NewLSHValuer(train, LSHConfig{K: 1, Eps: 0.1, Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	bad := dataset.Regression(dataset.RegressionConfig{N: 5, Dim: train.Dim(), Seed: 3})
	if _, err := v.Value(context.Background(), bad); err == nil {
		t.Error("regression test set accepted")
	}
}

// The engine must visit every item exactly once for any worker count and
// batch size (the successor of the seed's parallelFor test).
func TestEngineVisitsEveryItem(t *testing.T) {
	for _, cfg := range []EngineConfig{
		{Workers: 1}, {Workers: 3}, {Workers: 8, BatchSize: 5}, {Workers: 100, BatchSize: 1},
	} {
		items := make([]int, 57)
		for i := range items {
			items[i] = i
		}
		eng := NewEngine[int](cfg)
		sv, count, err := eng.RunSum(context.Background(), NewSliceSource(items), hitKernel{n: len(items)})
		if err != nil {
			t.Fatal(err)
		}
		if count != len(items) {
			t.Fatalf("cfg=%+v: %d items counted, want %d", cfg, count, len(items))
		}
		for i, h := range sv {
			if h != 1 {
				t.Fatalf("cfg=%+v: index %d visited %v times", cfg, i, h)
			}
		}
	}
}

// hitKernel marks each item's own index; the engine's sum then counts
// visits per index.
type hitKernel struct{ n int }

func (k hitKernel) OutLen() int { return k.n }
func (k hitKernel) Compute(_ context.Context, _ int, item int, _ *Scratch, dst []float64) error {
	dst[item]++
	return nil
}

// Exact and truncated multi must agree with per-test averaging.
func TestMultiAveragingConsistency(t *testing.T) {
	train := dataset.MNISTLike(200, 41)
	test := dataset.MNISTLike(8, 42)
	tps, err := knn.BuildTestPoints(knn.UnweightedClass, 3, nil, vec.L2, train, test)
	if err != nil {
		t.Fatal(err)
	}
	multi := ExactClassSVMulti(tps, Options{Workers: 4})
	manual := make([]float64, train.N())
	for _, tp := range tps {
		vec.AXPY(manual, 1, ExactClassSV(tp))
	}
	vec.Scale(manual, 1/float64(len(tps)))
	assertClose(t, multi, manual, 1e-12, "multi averaging")
}
