package core

import (
	"context"
	"fmt"

	"knnshapley/internal/dataset"
	"knnshapley/internal/knn"
)

// The built-in TestPoint kernels. Each one wraps a single-test-point
// algorithm from this package in the Kernel interface so the Engine can
// schedule it; adding a new valuation backend means adding a kernel here,
// not a new fan-out.

// ExactClassKernel is the Theorem 1 / Algorithm 1 exact recursion for the
// unweighted KNN classification utility (Eq. 5).
type ExactClassKernel struct {
	// N is the training-set size every test point must agree on.
	N int
}

// OutLen implements Kernel.
func (k ExactClassKernel) OutLen() int { return k.N }

// Compute implements Kernel.
func (k ExactClassKernel) Compute(_ context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	exactClassSVInto(tp, s, dst)
	return nil
}

// ExactRegressKernel is the Theorem 6 exact recursion for the unweighted
// KNN regression utility (Eq. 25).
type ExactRegressKernel struct {
	N int
}

// OutLen implements Kernel.
func (k ExactRegressKernel) OutLen() int { return k.N }

// Compute implements Kernel.
func (k ExactRegressKernel) Compute(_ context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	exactRegressSVInto(tp, s, dst)
	return nil
}

// TruncatedClassKernel is the (eps, 0)-approximation of Theorem 2: exact
// values for the K* nearest neighbors, zero beyond.
type TruncatedClassKernel struct {
	N   int
	Eps float64
}

// OutLen implements Kernel.
func (k TruncatedClassKernel) OutLen() int { return k.N }

// Compute implements Kernel.
func (k TruncatedClassKernel) Compute(_ context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	truncatedClassSVInto(tp, k.Eps, s, dst)
	return nil
}

// WeightedKernel is the Theorem 7 counting algorithm for the weighted KNN
// utilities (Eqs. 26/27). Cost grows like N^K; budget with
// EstimateWeightedCost before dispatching large problems.
type WeightedKernel struct {
	N int
}

// OutLen implements Kernel.
func (k WeightedKernel) OutLen() int { return k.N }

// Compute implements Kernel.
func (k WeightedKernel) Compute(ctx context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	if !tp.Kind.IsWeighted() {
		panic(fmt.Sprintf("core: ExactWeightedSV needs a weighted utility, got %v", tp.Kind))
	}
	countingSVInto(tp, dataOnlyWeights(tp.N()), s, dst)
	return nil
}

// MultiSellerKernel is the Theorem 8 seller-level game: OutLen is the
// seller count m, not the training-set size.
type MultiSellerKernel struct {
	Owners []int
	M      int
}

// OutLen implements Kernel.
func (k MultiSellerKernel) OutLen() int { return k.M }

// Compute implements Kernel.
func (k MultiSellerKernel) Compute(ctx context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	one, err := MultiSellerSV(tp, k.Owners, k.M)
	if err != nil {
		return err
	}
	copy(dst, one)
	return nil
}

// CompositeKernel is the composite game of Theorems 9–12 valuing the
// analyst alongside the sellers: dst holds the m seller shares followed by
// the analyst share in dst[m].
type CompositeKernel struct {
	// Owners is nil for the per-point composite game; otherwise owners[i]
	// names the seller of training point i and M sellers are valued.
	Owners []int
	M      int
}

// OutLen implements Kernel.
func (k CompositeKernel) OutLen() int { return k.M + 1 }

// Compute implements Kernel.
func (k CompositeKernel) Compute(ctx context.Context, _ int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var res CompositeResult
	var err error
	switch {
	case k.Owners != nil:
		res, err = CompositeMultiSellerSV(tp, k.Owners, k.M)
		if err != nil {
			return err
		}
	case tp.Kind == knn.UnweightedClass:
		res = CompositeClassSV(tp)
	case tp.Kind == knn.UnweightedRegress:
		res = CompositeRegressSV(tp)
	default:
		res = CompositeWeightedSV(tp)
	}
	copy(dst, res.Sellers)
	dst[k.M] = res.Analyst
	return nil
}

// labeledQuery is one classification query streamed through the Engine by
// the ANN-backed valuers (LSH, k-d tree).
type labeledQuery struct {
	q     []float64
	label int
}

// querySource streams a classification test set as labeledQuery items.
type querySource struct {
	test *dataset.Dataset
	pos  int
}

// NextBatch implements Source.
func (s *querySource) NextBatch(ctx context.Context, dst []labeledQuery) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := s.test.N() - s.pos
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		j := s.pos + i
		dst[i] = labeledQuery{q: s.test.X[j], label: s.test.Labels[j]}
	}
	s.pos += n
	return n, nil
}

// queryKernel adapts a per-query valuation closure (the LSH and k-d tree
// retrieval paths) to the Kernel interface.
type queryKernel struct {
	n     int
	value func(q []float64, label int, s *Scratch, dst []float64)
}

// OutLen implements Kernel.
func (k queryKernel) OutLen() int { return k.n }

// Compute implements Kernel.
func (k queryKernel) Compute(_ context.Context, _ int, item labeledQuery, s *Scratch, dst []float64) error {
	k.value(item.q, item.label, s, dst)
	return nil
}
