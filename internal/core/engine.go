package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"knnshapley/internal/kheap"
	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

// DefaultBatchSize is the number of work items an Engine materializes at
// once when EngineConfig.BatchSize is zero. Together with a streaming
// source it bounds peak memory at BatchSize·N distances instead of Ntest·N.
const DefaultBatchSize = 64

// EngineConfig holds the execution knobs shared by every valuation backend.
type EngineConfig struct {
	// Workers bounds the goroutines computing kernels (0 = GOMAXPROCS).
	Workers int
	// BatchSize bounds how many work items are in flight at once
	// (0 = DefaultBatchSize).
	BatchSize int
	// Progress, when non-nil, is called after every completed batch with the
	// cumulative number of work items reduced so far. It runs on the
	// goroutine driving Run, never concurrently with itself, and must be
	// cheap: the engine does not produce the next batch until it returns.
	Progress func(done int)
}

func (c EngineConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c EngineConfig) batch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatchSize
}

// Source streams work items in batches. NextBatch fills dst with up to
// len(dst) items and returns how many it produced; 0 means the stream is
// exhausted. Sources must return ctx.Err() promptly once ctx is canceled —
// together with the Engine's own per-batch check this bounds how long a
// canceled run keeps computing. The Engine always finishes a batch
// completely before asking for the next one, so sources may reuse the
// backing buffers of the items they hand out (knn.Stream does exactly that).
type Source[T any] interface {
	NextBatch(ctx context.Context, dst []T) (int, error)
}

// Kernel is a per-item valuation algorithm. One Kernel value is shared by
// all workers, so it must be safe for concurrent Compute calls; per-call
// temporaries come from the worker-owned Scratch.
type Kernel[T any] interface {
	// OutLen is the length of the value vector produced per item (the
	// training-set size for per-point values, the seller count for seller
	// values, and so on).
	OutLen() int
	// Compute writes item's value vector into dst (length OutLen, zeroed
	// by the Engine). idx is the item's global position in the stream,
	// which deterministic kernels (e.g. Monte Carlo) use for seeding.
	// Long-running kernels (the Monte-Carlo permutation loops) must poll
	// ctx and return ctx.Err() so cancellation aborts mid-item, not just
	// between batches.
	Compute(ctx context.Context, idx int, item T, s *Scratch, dst []float64) error
}

// SliceSource adapts an in-memory slice to the Source interface.
type SliceSource[T any] struct {
	items []T
	pos   int
}

// NewSliceSource returns a Source yielding items in order.
func NewSliceSource[T any](items []T) *SliceSource[T] {
	return &SliceSource[T]{items: items}
}

// NextBatch implements Source.
func (s *SliceSource[T]) NextBatch(ctx context.Context, dst []T) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := copy(dst, s.items[s.pos:])
	s.pos += n
	return n, nil
}

// Engine is the single execution layer behind every Shapley backend: a
// bounded worker pool that streams work items from a Source in batches of
// at most BatchSize, dispatches each item to a pluggable Kernel with a
// per-worker Scratch, and reduces the per-item value vectors into their
// running average in deterministic stream order.
//
// Exactly Workers goroutines are spawned for the whole run (the pool is
// created before any work is enqueued — compare the seed's averageOver,
// which spawned one goroutine per test point up front and only then
// throttled them on a semaphore). Because reduction happens in item order,
// the floating-point sum is bit-identical to a sequential loop over the
// items, for any Workers and BatchSize.
type Engine[T any] struct {
	cfg EngineConfig
}

// NewEngine returns an Engine with the given configuration.
func NewEngine[T any](cfg EngineConfig) *Engine[T] { return &Engine[T]{cfg: cfg} }

// Run streams src through kern and returns the average of the per-item
// value vectors, or nil when the source is empty (matching the seed
// *SVMulti behavior on an empty test set). Cancellation of ctx aborts the
// run within one engine batch and returns ctx.Err().
func (e *Engine[T]) Run(ctx context.Context, src Source[T], kern Kernel[T]) ([]float64, error) {
	sv, count, err := e.RunSum(ctx, src, kern)
	if err != nil || count == 0 {
		return nil, err
	}
	inv := 1 / float64(count)
	for i := range sv {
		sv[i] *= inv
	}
	return sv, nil
}

// RunSum is Run without the final averaging: it returns the item count and
// the plain sum of the per-item vectors, for callers that weight or
// normalize differently.
func (e *Engine[T]) RunSum(ctx context.Context, src Source[T], kern Kernel[T]) ([]float64, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := kern.OutLen()
	batch := e.cfg.batch()
	workers := e.cfg.workers()

	acc := make([]float64, out)
	items := make([]T, batch)
	results := make([][]float64, batch)

	type job struct {
		slot, idx int
		item      T
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		go func() {
			s := NewScratch()
			for jb := range jobs {
				dst := results[jb.slot]
				for i := range dst {
					dst[i] = 0
				}
				if err := kern.Compute(ctx, jb.idx, jb.item, s, dst); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				wg.Done()
			}
		}()
	}
	defer close(jobs)

	total := 0
	for {
		// Per-batch cancellation point: a canceled context stops the run
		// before the next batch is produced (kernels that loop for a long
		// time poll ctx themselves).
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		nb, err := src.NextBatch(ctx, items)
		if err != nil {
			return nil, 0, err
		}
		if nb == 0 {
			break
		}
		for i := 0; i < nb; i++ {
			if results[i] == nil {
				results[i] = make([]float64, out)
			}
		}
		wg.Add(nb)
		for i := 0; i < nb; i++ {
			jobs <- job{slot: i, idx: total + i, item: items[i]}
		}
		wg.Wait()
		mu.Lock()
		err = firstErr
		mu.Unlock()
		if err != nil {
			return nil, 0, err
		}
		// Ordered reduction: slot order is stream order, so the sum is
		// bit-identical to a sequential pass regardless of scheduling.
		for i := 0; i < nb; i++ {
			r := results[i]
			for j, v := range r {
				acc[j] += v
			}
		}
		total += nb
		if e.cfg.Progress != nil {
			e.cfg.Progress(total)
		}
	}
	return acc, total, nil
}

// Scratch holds per-worker reusable buffers so kernels do not allocate per
// test point. Buffers grow on demand and are reused across Compute calls;
// slot indices partition the float64 buffers between independent uses
// within one kernel invocation.
type Scratch struct {
	order  []int
	ints   []int
	floats [4][]float64
	bools  []bool
	heap   *kheap.Heap
	sorter vec.DistSorter
}

// NewScratch returns an empty scratch space.
func NewScratch() *Scratch { return &Scratch{} }

// Order returns the reusable index buffer resized to n.
func (s *Scratch) Order(n int) []int {
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	s.order = s.order[:n]
	return s.order
}

// Ints returns a second reusable index buffer resized to n.
func (s *Scratch) Ints(n int) []int {
	if cap(s.ints) < n {
		s.ints = make([]int, n)
	}
	s.ints = s.ints[:n]
	return s.ints
}

// Floats returns the reusable float64 buffer in the given slot (0..3)
// resized to n. Distinct slots never alias.
func (s *Scratch) Floats(slot, n int) []float64 {
	if cap(s.floats[slot]) < n {
		s.floats[slot] = make([]float64, n)
	}
	s.floats[slot] = s.floats[slot][:n]
	return s.floats[slot]
}

// Bools returns the reusable bool buffer resized to n.
func (s *Scratch) Bools(n int) []bool {
	if cap(s.bools) < n {
		s.bools = make([]bool, n)
	}
	s.bools = s.bools[:n]
	return s.bools
}

// OrderOf returns tp's distance ordering using the scratch index buffer
// and the worker-owned radix sorter (same ordering as tp.OrderInto, zero
// steady-state allocation).
func (s *Scratch) OrderOf(tp *knn.TestPoint) []int {
	s.order = s.sorter.ArgsortInto(s.order, tp.Dist)
	return s.order
}

// TopKOf returns the first k entries of tp's distance ordering — the same
// prefix OrderOf would produce — via heap partial selection in
// O(N + k log k) instead of sorting all N. It shares the scratch index
// buffer with OrderOf, so the two results must not be held simultaneously.
func (s *Scratch) TopKOf(tp *knn.TestPoint, k int) []int {
	if s.heap == nil || s.heap.K() != k {
		s.heap = kheap.New(k)
	}
	s.order = s.heap.TopKInto(s.order, tp.Dist)
	return s.order
}

// checkTrainSize verifies that tp matches the engine-wide training size n,
// mirroring the seed's "test points disagree on training size" guard.
func checkTrainSize(tp *knn.TestPoint, n int) error {
	if tp.N() != n {
		return fmt.Errorf("core: test points disagree on training size: %d != %d", tp.N(), n)
	}
	return nil
}
