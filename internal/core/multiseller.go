package core

import (
	"fmt"
	"sort"

	"knnshapley/internal/kheap"
	"knnshapley/internal/knn"
)

// MultiSellerSV computes the exact Shapley value of every *seller* when each
// seller contributes multiple training points (Section 4, Theorem 8), for a
// single test point and any of the four KNN utilities. owners[i] is the
// seller owning training point i; sellers are 0..m-1 and each must own at
// least one point.
//
// The algorithm enumerates the O(M^K) distinct K-nearest-neighbor sets A
// attainable by seller coalitions; every coalition whose extra sellers
// cannot perturb a given neighbor set is accounted for with a closed-form
// binomial factor (Eq. 84) rather than enumerated.
func MultiSellerSV(tp *knn.TestPoint, owners []int, m int) ([]float64, error) {
	return multiSellerSV(tp, owners, m, dataOnlyGroupWeights)
}

// multiSellerSV is shared by the data-only (Theorem 8) and composite
// (Theorem 12) variants, which differ only in the coalition-size weights.
func multiSellerSV(tp *knn.TestPoint, owners []int, m int, weights func(m int) []float64) ([]float64, error) {
	if len(owners) != tp.N() {
		return nil, fmt.Errorf("core: %d owners for %d training points", len(owners), tp.N())
	}
	points := make([][]int, m) // points[j] = training indices owned by seller j
	for i, o := range owners {
		if o < 0 || o >= m {
			return nil, fmt.Errorf("core: owner %d of point %d outside [0,%d)", o, i, m)
		}
		points[o] = append(points[o], i)
	}
	for j, pts := range points {
		if len(pts) == 0 {
			return nil, fmt.Errorf("core: seller %d owns no points", j)
		}
	}
	k := tp.K

	if k == 1 {
		// 1NN fast path (Section 4): the utility only sees the single
		// nearest point, so the seller game reduces to the per-point game on
		// each seller's closest point — O(M log M) instead of O(M^K).
		return oneNNSellerSV(tp, points, m, weights), nil
	}

	// neighborKey orders points by (distance, index); firstKey[j] is the key
	// of seller j's closest point.
	firstKey := make([]kheap.Item, m)
	for j, pts := range points {
		best := kheap.Item{ID: pts[0], Key: tp.Dist[pts[0]]}
		for _, i := range pts[1:] {
			if it := (kheap.Item{ID: i, Key: tp.Dist[i]}); itemLess(it, best) {
				best = it
			}
		}
		firstKey[j] = best
	}

	// topK returns the K nearest points of the union of the given sellers'
	// data, as (sorted ids, owners-bitset-as-sorted-slice, max key).
	topK := func(sellers []int) ([]int, []int, kheap.Item) {
		h := kheap.New(k)
		for _, j := range sellers {
			for _, i := range points[j] {
				h.Push(i, tp.Dist[i])
			}
		}
		items := h.Sorted()
		ids := make([]int, len(items))
		ownSet := map[int]bool{}
		var maxKey kheap.Item
		for r, it := range items {
			ids[r] = it.ID
			ownSet[owners[it.ID]] = true
			maxKey = it
		}
		own := make([]int, 0, len(ownSet))
		for j := range ownSet {
			own = append(own, j)
		}
		sort.Ints(own)
		return ids, own, maxKey
	}

	// Enumerate the canonical neighbor sets A: for every seller coalition S̃
	// of size ≤ K whose top-K points are owned by exactly S̃.
	type entry struct {
		ids    []int      // the K (or fewer) nearest point indices
		own    []int      // h(S): owners of ids (== generating coalition)
		maxKey kheap.Item // farthest member, for the G(S,j) test
		util   float64    // ν evaluated on ids
	}
	var atoms []entry
	maxSize := k
	if maxSize > m {
		maxSize = m
	}
	for size := 1; size <= maxSize; size++ {
		forEachCombination(m, size, func(comb []int) {
			ids, own, maxKey := topK(comb)
			if len(own) != size {
				return // canonical generator is the smaller owner set
			}
			for r, j := range own {
				if j != comb[r] {
					return
				}
			}
			atoms = append(atoms, entry{ids: ids, own: own, maxKey: maxKey, util: tp.SubsetUtility(ids)})
		})
	}

	w := weights(m) // w[t] = weight of a coalition of t sellers
	empty := tp.EmptyUtility()
	sv := make([]float64, m)
	for j := 0; j < m; j++ {
		// The empty coalition: T = ∅ pairs only with S = ∅.
		withJ, _, _ := topK([]int{j})
		sv[j] += w[0] * (tp.SubsetUtility(withJ) - empty)
		for _, a := range atoms {
			if containsInt(a.own, j) {
				continue
			}
			// G(S, j): sellers outside h(S)∪{j} whose closest point lies
			// beyond S's farthest member; they can join the coalition
			// without disturbing the neighbor set. Only meaningful when the
			// neighbor set is full (|S| = K) — otherwise any added point
			// enters it.
			g := 0
			if len(a.ids) == k {
				for jj := 0; jj < m; jj++ {
					if jj == j || containsInt(a.own, jj) {
						continue
					}
					if itemLess(a.maxKey, firstKey[jj]) {
						g++
					}
				}
			}
			// ν(T∪{j}) for every such coalition equals ν(top-K(S ∪ data_j)).
			h := kheap.New(k)
			for _, i := range a.ids {
				h.Push(i, tp.Dist[i])
			}
			for _, i := range points[j] {
				h.Push(i, tp.Dist[i])
			}
			items := h.Sorted()
			ids := make([]int, len(items))
			for r, it := range items {
				ids[r] = it.ID
			}
			diff := tp.SubsetUtility(ids) - a.util
			if diff == 0 {
				continue
			}
			// Σ_{extra=0}^{g} C(g, extra) · w[|h(S)|+extra].
			coef := 0.0
			binom := 1.0
			for extra := 0; extra <= g; extra++ {
				coef += binom * w[len(a.own)+extra]
				binom = binom * float64(g-extra) / float64(extra+1)
			}
			sv[j] += coef * diff
		}
	}
	return sv, nil
}

// oneNNSellerSV reduces the K=1 multi-seller game to a per-point game on
// each seller's nearest representative and solves it with the generic
// counting machinery (which at K=1 costs O(M) beyond the O(M log M) sort).
func oneNNSellerSV(tp *knn.TestPoint, points [][]int, m int, weights func(m int) []float64) []float64 {
	reduced := &knn.TestPoint{
		Kind:   tp.Kind,
		K:      1,
		Weight: tp.Weight,
		YTest:  tp.YTest,
		Dist:   make([]float64, m),
	}
	if tp.Kind.IsRegression() {
		reduced.Y = make([]float64, m)
	} else {
		reduced.Correct = make([]bool, m)
	}
	for j, pts := range points {
		best := pts[0]
		for _, i := range pts[1:] {
			if tp.Dist[i] < tp.Dist[best] || (tp.Dist[i] == tp.Dist[best] && i < best) {
				best = i
			}
		}
		reduced.Dist[j] = tp.Dist[best]
		if tp.Kind.IsRegression() {
			reduced.Y[j] = tp.Y[best]
		} else {
			reduced.Correct[j] = tp.Correct[best]
		}
	}
	w := weights(m)
	return countingSV(reduced, svWeights{
		subset: func(k int) float64 { return w[k] },
		pair: func(k int) float64 {
			if k+1 < len(w) {
				return w[k] + w[k+1]
			}
			return w[k]
		},
		pairRatio: func(k int) float64 {
			a := w[k] + w[k+1]
			var b float64
			if k+2 < len(w) {
				b = w[k+1] + w[k+2]
			}
			return b / a
		},
	})
}

// dataOnlyGroupWeights returns w[t] = (1/M)·1/C(M−1,t), the Shapley
// coalition-size weights of the M-seller data-only game (Eq. 84).
func dataOnlyGroupWeights(m int) []float64 {
	w := make([]float64, m)
	w[0] = 1 / float64(m)
	for t := 1; t < m; t++ {
		// 1/C(M−1,t) = 1/C(M−1,t−1) · t/(M−t).
		w[t] = w[t-1] * float64(t) / float64(m-t)
	}
	return w
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// itemLess orders by (distance, index), matching kheap's convention.
func itemLess(a, b kheap.Item) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.ID < b.ID
}
