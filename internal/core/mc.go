package core

import (
	"fmt"
	"math/rand/v2"

	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
)

// BoundKind selects how the improved Monte-Carlo estimator picks its
// permutation budget.
type BoundKind int

const (
	// BoundBennett solves Theorem 5's Eq. (32) numerically — the paper's
	// improved bound, roughly flat in N.
	BoundBennett BoundKind = iota
	// BoundBennettApprox uses the closed-form T̃ = r²/ε²·log(2K/δ) (Eq. 34).
	BoundBennettApprox
	// BoundHoeffding uses the Section 2.2 baseline budget
	// T = width²/(2ε²)·log(2N/δ), which grows with log N.
	BoundHoeffding
	// BoundFixed runs exactly MCConfig.T permutations.
	BoundFixed
)

// String names the bound.
func (b BoundKind) String() string {
	switch b {
	case BoundBennett:
		return "bennett"
	case BoundBennettApprox:
		return "bennett-approx"
	case BoundHoeffding:
		return "hoeffding"
	case BoundFixed:
		return "fixed"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(b))
	}
}

// MCConfig configures the improved Monte-Carlo estimator (Algorithm 2).
type MCConfig struct {
	// Eps and Delta define the (ε,δ)-approximation target.
	Eps, Delta float64
	// Bound selects the permutation budget rule.
	Bound BoundKind
	// T is the fixed budget when Bound == BoundFixed; otherwise it caps the
	// budget when positive.
	T int
	// RangeHalfWidth is the half-width r of the utility-difference range
	// [−r, r]; zero selects 1/K for unweighted classification and requires
	// an explicit value for other utilities.
	RangeHalfWidth float64
	// Heuristic, when true, stops early once the max change of the running
	// estimates stays below Eps/50 for HeuristicPatience consecutive
	// permutations (the stopping rule evaluated in Figure 11).
	Heuristic bool
	// HeuristicPatience defaults to 5.
	HeuristicPatience int
	// MinPermutations floors the budget (default 10).
	MinPermutations int
	// Seed drives the permutation stream.
	Seed uint64
}

func (c MCConfig) withDefaults(tp *knn.TestPoint) (MCConfig, error) {
	if c.Bound != BoundFixed {
		if c.Eps <= 0 || c.Delta <= 0 || c.Delta >= 1 {
			return c, fmt.Errorf("core: MC bound %v needs eps in (0,inf), delta in (0,1); got eps=%v delta=%v",
				c.Bound, c.Eps, c.Delta)
		}
	} else if c.T <= 0 {
		return c, fmt.Errorf("core: BoundFixed needs T > 0")
	}
	if c.RangeHalfWidth <= 0 {
		if tp.Kind == knn.UnweightedClass {
			c.RangeHalfWidth = 1 / float64(tp.K)
		} else if c.Bound != BoundFixed {
			return c, fmt.Errorf("core: RangeHalfWidth required for utility kind %v", tp.Kind)
		}
	}
	if c.HeuristicPatience <= 0 {
		c.HeuristicPatience = 5
	}
	if c.MinPermutations <= 0 {
		c.MinPermutations = 10
	}
	return c, nil
}

// Budget returns the permutation budget the configuration implies for a
// problem with n training points and KNN parameter k.
func (c MCConfig) Budget(n, k int) int {
	switch c.Bound {
	case BoundHoeffding:
		t := stats.HoeffdingPermutations(2*c.RangeHalfWidth, c.Eps, c.Delta, n)
		return c.capT(t)
	case BoundBennettApprox:
		t := stats.BennettApproxPermutations(c.RangeHalfWidth, c.Eps, c.Delta, k)
		return c.capT(t)
	case BoundBennett:
		t := stats.BennettPermutations(stats.KNNNonzeroProb(n, k), c.RangeHalfWidth, c.Eps, c.Delta)
		return c.capT(t)
	default:
		return c.T
	}
}

func (c MCConfig) capT(t int) int {
	if c.T > 0 && t > c.T {
		return c.T
	}
	return t
}

// MCResult reports the estimate and how it was obtained.
type MCResult struct {
	SV []float64
	// Permutations actually executed (≤ budget under the heuristic).
	Permutations int
	// Budget is the bound-implied permutation count.
	Budget int
	// UtilityEvals counts incremental utility updates (heap hits), the
	// cost driver Algorithm 2 minimizes.
	UtilityEvals int
}

// ImprovedMC is Algorithm 2: permutation sampling with a bounded max-heap
// per test point, so a step costs O(log K) unless the KNN set changes, plus
// the Bennett-style budget of Theorem 5 and the optional Eps/50 stopping
// heuristic. It applies to every utility kind, which is what makes it the
// practical choice for weighted KNN and multi-data-per-curator games.
func ImprovedMC(tps []*knn.TestPoint, cfg MCConfig) (MCResult, error) {
	if len(tps) == 0 {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	cfg, err := cfg.withDefaults(tps[0])
	if err != nil {
		return MCResult{}, err
	}
	n := tps[0].N()
	budget := cfg.Budget(n, tps[0].K)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc0ffee123456789a))

	sumSV := make([]float64, n)   // Σ_t φ^t
	prevEst := make([]float64, n) // running estimate after t−1 permutations
	incs := make([]*knn.Incremental, len(tps))
	for j, tp := range tps {
		if tp.N() != n {
			return MCResult{}, fmt.Errorf("core: test points disagree on training size")
		}
		incs[j] = knn.NewIncremental(tp)
	}
	invTest := 1 / float64(len(tps))
	evals := 0
	calm := 0
	t := 0
	for ; t < budget; t++ {
		perm := rng.Perm(n)
		prev := 0.0
		for j := range incs {
			incs[j].Reset()
			prev += incs[j].Utility()
		}
		prev *= invTest
		for _, i := range perm {
			cur := 0.0
			for j := range incs {
				u, changed := incs[j].Add(i)
				if changed {
					evals++
				}
				cur += u
			}
			cur *= invTest
			sumSV[i] += cur - prev
			prev = cur
		}
		if cfg.Heuristic && t+1 >= cfg.MinPermutations {
			// Compare the running means before and after this permutation.
			maxChange := 0.0
			inv := 1 / float64(t+1)
			for i := range sumSV {
				est := sumSV[i] * inv
				if d := est - prevEst[i]; d > maxChange {
					maxChange = d
				} else if -d > maxChange {
					maxChange = -d
				}
				prevEst[i] = est
			}
			if maxChange < cfg.Eps/50 {
				calm++
				if calm >= cfg.HeuristicPatience {
					t++
					break
				}
			} else {
				calm = 0
			}
		} else if cfg.Heuristic {
			inv := 1 / float64(t+1)
			for i := range sumSV {
				prevEst[i] = sumSV[i] * inv
			}
		}
	}
	sv := make([]float64, n)
	inv := 1 / float64(t)
	for i := range sv {
		sv[i] = sumSV[i] * inv
	}
	return MCResult{SV: sv, Permutations: t, Budget: budget, UtilityEvals: evals}, nil
}

// MultiSellerMC estimates seller-level Shapley values by permutation
// sampling over sellers with the same heap-incremental trick: inserting a
// seller streams all its points into the per-test-point heaps (the
// Section 6.2.2 comparison for Figure 13).
func MultiSellerMC(tps []*knn.TestPoint, owners []int, m int, cfg MCConfig) (MCResult, error) {
	if len(tps) == 0 {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	cfg, err := cfg.withDefaults(tps[0])
	if err != nil {
		return MCResult{}, err
	}
	n := tps[0].N()
	if len(owners) != n {
		return MCResult{}, fmt.Errorf("core: %d owners for %d points", len(owners), n)
	}
	points := make([][]int, m)
	for i, o := range owners {
		if o < 0 || o >= m {
			return MCResult{}, fmt.Errorf("core: owner %d outside [0,%d)", o, m)
		}
		points[o] = append(points[o], i)
	}
	budget := cfg.Budget(m, tps[0].K)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xfeedface87654321))
	incs := make([]*knn.Incremental, len(tps))
	for j, tp := range tps {
		incs[j] = knn.NewIncremental(tp)
	}
	invTest := 1 / float64(len(tps))
	sumSV := make([]float64, m)
	prevEst := make([]float64, m)
	evals := 0
	calm := 0
	t := 0
	for ; t < budget; t++ {
		perm := rng.Perm(m)
		prev := 0.0
		for j := range incs {
			incs[j].Reset()
			prev += incs[j].Utility()
		}
		prev *= invTest
		for _, s := range perm {
			cur := 0.0
			for j := range incs {
				u := incs[j].Utility()
				for _, i := range points[s] {
					var changed bool
					u, changed = incs[j].Add(i)
					if changed {
						evals++
					}
				}
				cur += u
			}
			cur *= invTest
			sumSV[s] += cur - prev
			prev = cur
		}
		if cfg.Heuristic && t+1 >= cfg.MinPermutations {
			maxChange := 0.0
			inv := 1 / float64(t+1)
			for i := range sumSV {
				est := sumSV[i] * inv
				if d := est - prevEst[i]; d > maxChange {
					maxChange = d
				} else if -d > maxChange {
					maxChange = -d
				}
				prevEst[i] = est
			}
			if maxChange < cfg.Eps/50 {
				calm++
				if calm >= cfg.HeuristicPatience {
					t++
					break
				}
			} else {
				calm = 0
			}
		} else if cfg.Heuristic {
			inv := 1 / float64(t+1)
			for i := range sumSV {
				prevEst[i] = sumSV[i] * inv
			}
		}
	}
	sv := make([]float64, m)
	inv := 1 / float64(t)
	for i := range sv {
		sv[i] = sumSV[i] * inv
	}
	return MCResult{SV: sv, Permutations: t, Budget: budget, UtilityEvals: evals}, nil
}
