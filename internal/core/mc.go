package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
)

// BoundKind selects how the improved Monte-Carlo estimator picks its
// permutation budget.
type BoundKind int

const (
	// BoundBennett solves Theorem 5's Eq. (32) numerically — the paper's
	// improved bound, roughly flat in N.
	BoundBennett BoundKind = iota
	// BoundBennettApprox uses the closed-form T̃ = r²/ε²·log(2K/δ) (Eq. 34).
	BoundBennettApprox
	// BoundHoeffding uses the Section 2.2 baseline budget
	// T = width²/(2ε²)·log(2N/δ), which grows with log N.
	BoundHoeffding
	// BoundFixed runs exactly MCConfig.T permutations.
	BoundFixed
)

// String names the bound.
func (b BoundKind) String() string {
	switch b {
	case BoundBennett:
		return "bennett"
	case BoundBennettApprox:
		return "bennett-approx"
	case BoundHoeffding:
		return "hoeffding"
	case BoundFixed:
		return "fixed"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(b))
	}
}

// MCConfig configures the improved Monte-Carlo estimator (Algorithm 2).
type MCConfig struct {
	// Eps and Delta define the (ε,δ)-approximation target.
	Eps, Delta float64
	// Bound selects the permutation budget rule.
	Bound BoundKind
	// T is the fixed budget when Bound == BoundFixed; otherwise it caps the
	// budget when positive.
	T int
	// RangeHalfWidth is the half-width r of the utility-difference range
	// [−r, r]; zero selects 1/K for unweighted classification and requires
	// an explicit value for other utilities.
	RangeHalfWidth float64
	// Heuristic, when true, stops a test point's sampling early once the max
	// change of its running estimates stays below Eps/50 for
	// HeuristicPatience consecutive permutations (the stopping rule
	// evaluated in Figure 11, applied per test point so the estimator
	// parallelizes).
	Heuristic bool
	// HeuristicPatience defaults to 5.
	HeuristicPatience int
	// MinPermutations floors the budget (default 10).
	MinPermutations int
	// Seed drives the permutation streams. Each test point derives its own
	// deterministic stream from (Seed, test index), so results are
	// reproducible for any worker count.
	Seed uint64
	// Workers and BatchSize configure the Engine fan-out (0 = defaults).
	Workers, BatchSize int
	// Progress is forwarded to the Engine (see EngineConfig.Progress): it
	// fires after every batch of test points completes all its permutations.
	Progress func(done int)
}

func (c MCConfig) withDefaults(kind knn.Kind, k int) (MCConfig, error) {
	if c.Bound != BoundFixed {
		if c.Eps <= 0 || c.Delta <= 0 || c.Delta >= 1 {
			return c, fmt.Errorf("core: MC bound %v needs eps in (0,inf), delta in (0,1); got eps=%v delta=%v",
				c.Bound, c.Eps, c.Delta)
		}
	} else if c.T <= 0 {
		return c, fmt.Errorf("core: BoundFixed needs T > 0")
	}
	if c.RangeHalfWidth <= 0 {
		if kind == knn.UnweightedClass {
			c.RangeHalfWidth = 1 / float64(k)
		} else if c.Bound != BoundFixed {
			return c, fmt.Errorf("core: RangeHalfWidth required for utility kind %v", kind)
		}
	}
	if c.HeuristicPatience <= 0 {
		c.HeuristicPatience = 5
	}
	if c.MinPermutations <= 0 {
		c.MinPermutations = 10
	}
	return c, nil
}

func (c MCConfig) engine() EngineConfig {
	return EngineConfig{Workers: c.Workers, BatchSize: c.BatchSize, Progress: c.Progress}
}

// Budget returns the permutation budget the configuration implies for a
// problem with n training points and KNN parameter k.
func (c MCConfig) Budget(n, k int) int {
	switch c.Bound {
	case BoundHoeffding:
		t := stats.HoeffdingPermutations(2*c.RangeHalfWidth, c.Eps, c.Delta, n)
		return c.capT(t)
	case BoundBennettApprox:
		t := stats.BennettApproxPermutations(c.RangeHalfWidth, c.Eps, c.Delta, k)
		return c.capT(t)
	case BoundBennett:
		t := stats.BennettPermutations(stats.KNNNonzeroProb(n, k), c.RangeHalfWidth, c.Eps, c.Delta)
		return c.capT(t)
	default:
		return c.T
	}
}

func (c MCConfig) capT(t int) int {
	if c.T > 0 && t > c.T {
		return c.T
	}
	return t
}

// MCResult reports the estimate and how it was obtained.
type MCResult struct {
	SV []float64
	// Permutations is the largest number of permutations any test point
	// executed (≤ budget under the heuristic).
	Permutations int
	// Budget is the bound-implied permutation count.
	Budget int
	// UtilityEvals counts incremental utility updates (heap hits), the
	// cost driver Algorithm 2 minimizes.
	UtilityEvals int
}

// MCKernel is Algorithm 2 as an Engine kernel: permutation sampling with a
// bounded max-heap per test point, so a step costs O(log K) unless the KNN
// set changes. Each test point samples its own deterministic permutation
// stream derived from (Seed, test index) and, by additivity, the Engine's
// average over test points is the multi-test estimate — which is what lets
// the sampler fan out over the worker pool instead of running one global
// permutation loop.
type MCKernel struct {
	N      int
	Budget int
	Cfg    MCConfig // defaults applied

	perms atomic.Int64 // max permutations any item executed
	evals atomic.Int64 // total incremental utility updates
}

// OutLen implements Kernel.
func (k *MCKernel) OutLen() int { return k.N }

// Compute implements Kernel.
func (k *MCKernel) Compute(ctx context.Context, idx int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	n := tp.N()
	inc := knn.NewIncremental(tp)
	rng := mcRNG(k.Cfg.Seed, idx)
	perm := s.Ints(n)
	var prevEst []float64
	if k.Cfg.Heuristic {
		prevEst = s.Floats(3, n)
		for i := range prevEst {
			prevEst[i] = 0
		}
	}
	evals := 0
	calm := 0
	t := 0
	for ; t < k.Budget; t++ {
		// Per-permutation-chunk cancellation point: budgets routinely run to
		// thousands of permutations, so waiting for the batch boundary would
		// defeat prompt cancellation.
		if err := ctx.Err(); err != nil {
			return err
		}
		fisherYates(perm, rng)
		inc.Reset()
		prev := inc.Utility()
		for _, i := range perm {
			u, changed := inc.Add(i)
			if changed {
				evals++
			}
			dst[i] += u - prev
			prev = u
		}
		if k.Cfg.Heuristic && t+1 >= k.Cfg.MinPermutations {
			// Compare the running means before and after this permutation.
			maxChange := 0.0
			inv := 1 / float64(t+1)
			for i := range dst {
				est := dst[i] * inv
				if d := est - prevEst[i]; d > maxChange {
					maxChange = d
				} else if -d > maxChange {
					maxChange = -d
				}
				prevEst[i] = est
			}
			if maxChange < k.Cfg.Eps/50 {
				calm++
				if calm >= k.Cfg.HeuristicPatience {
					t++
					break
				}
			} else {
				calm = 0
			}
		} else if k.Cfg.Heuristic {
			inv := 1 / float64(t+1)
			for i := range dst {
				prevEst[i] = dst[i] * inv
			}
		}
	}
	inv := 1 / float64(t)
	for i := range dst {
		dst[i] *= inv
	}
	k.evals.Add(int64(evals))
	atomicMax(&k.perms, int64(t))
	return nil
}

// mcRNG derives the deterministic permutation stream of test point idx.
func mcRNG(seed uint64, idx int) *rand.Rand {
	// SplitMix64 finalizer decorrelates consecutive indices.
	z := uint64(idx) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewPCG(seed, 0xc0ffee123456789a^z))
}

// fisherYates refills perm with 0..n-1 and shuffles it in place.
func fisherYates(perm []int, rng *rand.Rand) {
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ImprovedMC is Algorithm 2 over an in-memory test-point slice: permutation
// sampling with the Bennett-style budget of Theorem 5 and the optional
// Eps/50 stopping heuristic, dispatched through the shared Engine. It
// applies to every utility kind, which is what makes it the practical
// choice for weighted KNN and multi-data-per-curator games.
func ImprovedMC(tps []*knn.TestPoint, cfg MCConfig) (MCResult, error) {
	if len(tps) == 0 {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	return ImprovedMCStream(context.Background(), NewSliceSource(tps), tps[0].Kind, tps[0].N(), tps[0].K, cfg)
}

// ImprovedMCStream is ImprovedMC over a streaming test-point source (e.g.
// knn.Stream): peak memory stays bounded by the Engine batch size. kind, n
// and k describe the utility the source produces, needed to derive the
// permutation budget before any test point is materialized.
func ImprovedMCStream(ctx context.Context, src Source[*knn.TestPoint], kind knn.Kind, n, k int, cfg MCConfig) (MCResult, error) {
	cfg, err := cfg.withDefaults(kind, k)
	if err != nil {
		return MCResult{}, err
	}
	kern := &MCKernel{N: n, Budget: cfg.Budget(n, k), Cfg: cfg}
	sv, err := NewEngine[*knn.TestPoint](cfg.engine()).Run(ctx, src, kern)
	if err != nil {
		return MCResult{}, err
	}
	if sv == nil {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	return MCResult{
		SV:           sv,
		Permutations: int(kern.perms.Load()),
		Budget:       kern.Budget,
		UtilityEvals: int(kern.evals.Load()),
	}, nil
}

// SellerMCKernel is the seller-level Algorithm 2: permutation sampling over
// sellers where inserting a seller streams all its points into the
// per-test-point heap (the Section 6.2.2 comparison for Figure 13).
type SellerMCKernel struct {
	N      int
	M      int
	Points [][]int // Points[j] = training indices owned by seller j
	Budget int
	Cfg    MCConfig

	perms atomic.Int64
	evals atomic.Int64
}

// OutLen implements Kernel.
func (k *SellerMCKernel) OutLen() int { return k.M }

// Compute implements Kernel.
func (k *SellerMCKernel) Compute(ctx context.Context, idx int, tp *knn.TestPoint, s *Scratch, dst []float64) error {
	if err := checkTrainSize(tp, k.N); err != nil {
		return err
	}
	inc := knn.NewIncremental(tp)
	rng := mcRNG(k.Cfg.Seed^0xfeedface87654321, idx)
	perm := s.Ints(k.M)
	var prevEst []float64
	if k.Cfg.Heuristic {
		prevEst = s.Floats(3, k.M)
		for i := range prevEst {
			prevEst[i] = 0
		}
	}
	evals := 0
	calm := 0
	t := 0
	for ; t < k.Budget; t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		fisherYates(perm, rng)
		inc.Reset()
		prev := inc.Utility()
		for _, sel := range perm {
			u := inc.Utility()
			for _, i := range k.Points[sel] {
				var changed bool
				u, changed = inc.Add(i)
				if changed {
					evals++
				}
			}
			dst[sel] += u - prev
			prev = u
		}
		if k.Cfg.Heuristic && t+1 >= k.Cfg.MinPermutations {
			maxChange := 0.0
			inv := 1 / float64(t+1)
			for i := range dst {
				est := dst[i] * inv
				if d := est - prevEst[i]; d > maxChange {
					maxChange = d
				} else if -d > maxChange {
					maxChange = -d
				}
				prevEst[i] = est
			}
			if maxChange < k.Cfg.Eps/50 {
				calm++
				if calm >= k.Cfg.HeuristicPatience {
					t++
					break
				}
			} else {
				calm = 0
			}
		} else if k.Cfg.Heuristic {
			inv := 1 / float64(t+1)
			for i := range dst {
				prevEst[i] = dst[i] * inv
			}
		}
	}
	inv := 1 / float64(t)
	for i := range dst {
		dst[i] *= inv
	}
	k.evals.Add(int64(evals))
	atomicMax(&k.perms, int64(t))
	return nil
}

// MultiSellerMC estimates seller-level Shapley values by permutation
// sampling over sellers through the Engine.
func MultiSellerMC(ctx context.Context, tps []*knn.TestPoint, owners []int, m int, cfg MCConfig) (MCResult, error) {
	if len(tps) == 0 {
		return MCResult{}, fmt.Errorf("core: no test points")
	}
	cfg, err := cfg.withDefaults(tps[0].Kind, tps[0].K)
	if err != nil {
		return MCResult{}, err
	}
	n := tps[0].N()
	if len(owners) != n {
		return MCResult{}, fmt.Errorf("core: %d owners for %d points", len(owners), n)
	}
	points := make([][]int, m)
	for i, o := range owners {
		if o < 0 || o >= m {
			return MCResult{}, fmt.Errorf("core: owner %d outside [0,%d)", o, m)
		}
		points[o] = append(points[o], i)
	}
	kern := &SellerMCKernel{N: n, M: m, Points: points, Budget: cfg.Budget(m, tps[0].K), Cfg: cfg}
	sv, err := NewEngine[*knn.TestPoint](cfg.engine()).Run(ctx, NewSliceSource(tps), kern)
	if err != nil {
		return MCResult{}, err
	}
	return MCResult{
		SV:           sv,
		Permutations: int(kern.perms.Load()),
		Budget:       kern.Budget,
		UtilityEvals: int(kern.evals.Load()),
	}, nil
}
