package core

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randPacked builds a packed ranking: a random permutation of [0,n) with
// correctness density p.
func randPacked(rng *rand.Rand, n int, p float64) []uint32 {
	l := make([]uint32, n)
	for r, id := range rng.Perm(n) {
		l[r] = uint32(id)
		if rng.Float64() < p {
			l[r] |= CorrectBit
		}
	}
	return l
}

// unpackRanking splits a packed list into the (ranking, correct) pair the
// reference recursions take.
func unpackRanking(l []uint32) ([]int, []bool) {
	ranking := make([]int, len(l))
	correct := make([]bool, len(l))
	for r, v := range l {
		ranking[r] = int(v &^ CorrectBit)
		correct[r] = v&CorrectBit != 0
	}
	return ranking, correct
}

// refAccumulate runs the reference recursion into a zeroed vector and adds it
// to acc — the cluster merge loop's exact operation sequence.
func refAccumulate(l []uint32, k int, eps float64, truncated bool, acc []float64) {
	ranking, correct := unpackRanking(l)
	dst := make([]float64, len(acc))
	if truncated {
		TruncatedFromRankingInto(ranking, correct, len(acc), k, eps, dst)
	} else {
		ExactClassFromRankingInto(ranking, correct, k, dst)
	}
	for j, v := range dst {
		acc[j] += v
	}
}

func requireSameBits(t *testing.T, want, got []float64, what string) {
	t.Helper()
	for j := range want {
		if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
			t.Fatalf("%s: acc[%d] = %x, want %x", what, j, math.Float64bits(got[j]), math.Float64bits(want[j]))
		}
	}
}

func TestReplayPackedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 2, 3, 7, 64, 257, 1000} {
		for _, p := range []float64{0, 0.1, 0.5, 1} {
			for _, k := range []int{1, 5, 100} {
				want := make([]float64, n)
				got := make([]float64, n)
				terms := Terms(k, n)
				for tp := 0; tp < 3; tp++ {
					l := randPacked(rng, n, p)
					refAccumulate(l, k, 0, false, want)
					ReplayPacked(l, FlipsOfPacked(l), float64(max(n, k)), terms, got)
				}
				requireSameBits(t, want, got, "exact")
			}
		}
	}
}

func TestReplayPackedPrefixMatchesTruncated(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{1, 5, 99, 400} {
		for _, eps := range []float64{0.5, 0.05, 0.009} {
			for _, k := range []int{1, 7} {
				kStar := KStar(k, eps)
				want := make([]float64, n)
				got := make([]float64, n)
				terms := Terms(k, n)
				for tp := 0; tp < 3; tp++ {
					l := randPacked(rng, n, 0.3)
					refAccumulate(l, k, eps, true, want)
					flips := FlipsOfPacked(l)
					if kStar >= n {
						ReplayPacked(l, flips, float64(n), terms, got)
					} else {
						ReplayPackedPrefix(l, TrimFlips(flips, kStar), kStar, terms, got)
					}
				}
				requireSameBits(t, want, got, "truncated")
			}
		}
	}
}

// spliceOverlay materializes the child ranking a (base, overlay) pair
// represents, for checking the overlay kernels against the plain ones.
func spliceOverlay(base []uint32, opos []int32, oidx []uint32) []uint32 {
	n := len(base) + len(opos)
	merged := make([]uint32, 0, n)
	oi := 0
	for r := 0; r < n; r++ {
		if oi < len(opos) && int(opos[oi]) == r {
			merged = append(merged, oidx[oi])
			oi++
		} else {
			merged = append(merged, base[r-oi])
		}
	}
	return merged
}

// randOverlay builds m insertions at distinct random child ranks of a child
// list of length baseN+m, indices continuing past baseN.
func randOverlay(rng *rand.Rand, baseN, m int) ([]int32, []uint32) {
	n := baseN + m
	seen := make(map[int32]bool, m)
	pos := make([]int32, 0, m)
	for len(pos) < m {
		p := int32(rng.IntN(n))
		if !seen[p] {
			seen[p] = true
			pos = append(pos, p)
		}
	}
	for i := 1; i < len(pos); i++ {
		for j := i; j > 0 && pos[j] < pos[j-1]; j-- {
			pos[j], pos[j-1] = pos[j-1], pos[j]
		}
	}
	idx := make([]uint32, m)
	for j := range idx {
		idx[j] = uint32(baseN + j)
		if rng.Float64() < 0.5 {
			idx[j] |= CorrectBit
		}
	}
	return pos, idx
}

func TestReplayPackedOverlayMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, baseN := range []int{1, 10, 200} {
		for _, m := range []int{1, 3, 17} {
			n := baseN + m
			k := 4
			terms := Terms(k, n)
			base := randPacked(rng, baseN, 0.4)
			opos, oidx := randOverlay(rng, baseN, m)
			merged := spliceOverlay(base, opos, oidx)
			flips := FlipsOfPacked(merged)

			want := make([]float64, n)
			got := make([]float64, n)
			for rep := 0; rep < 2; rep++ {
				ReplayPacked(merged, flips, float64(max(n, k)), terms, want)
				ReplayPackedOverlay(base, opos, oidx, flips, float64(max(n, k)), terms, got)
			}
			requireSameBits(t, want, got, "overlay exact")

			for _, limit := range []int{1, n / 2, n - 1} {
				if limit <= 0 || limit >= n {
					continue
				}
				want = make([]float64, n)
				got = make([]float64, n)
				tf := TrimFlips(flips, limit)
				ReplayPackedPrefix(merged, tf, limit, terms, want)
				ReplayPackedOverlayPrefix(base, opos, oidx, tf, limit, terms, got)
				requireSameBits(t, want, got, "overlay prefix")
			}
		}
	}
}

func TestTermsMatchesRecurrence(t *testing.T) {
	for _, k := range []int{1, 3, 9} {
		terms := Terms(k, 50)
		if len(terms) < 51 {
			t.Fatalf("Terms(%d, 50) has %d entries", k, len(terms))
		}
		for i := 1; i <= 50; i++ {
			minKi := float64(min(k, i))
			want := (1.0 - 0.0) / float64(k) * minKi / float64(i)
			if math.Float64bits(terms[i]) != math.Float64bits(want) {
				t.Fatalf("Terms(%d)[%d] = %x, want %x", k, i, math.Float64bits(terms[i]), math.Float64bits(want))
			}
			// IEEE negation is exact, so one table serves downward flips too.
			down := (0.0 - 1.0) / float64(k) * minKi / float64(i)
			if math.Float64bits(-terms[i]) != math.Float64bits(down) {
				t.Fatalf("-Terms(%d)[%d] != downward term", k, i)
			}
		}
	}
	// Growth keeps earlier entries stable.
	small := append([]float64(nil), Terms(5, 10)...)
	grown := Terms(5, 1000)
	for i := range small {
		if math.Float64bits(small[i]) != math.Float64bits(grown[i]) {
			t.Fatalf("Terms growth changed entry %d", i)
		}
	}
	// The per-K retention bound holds.
	for k := 100; k < 100+2*termsMaxK; k++ {
		Terms(k, 4)
	}
	termsMu.Lock()
	nk := len(termsByK)
	termsMu.Unlock()
	if nk > termsMaxK {
		t.Fatalf("terms cache holds %d tables, bound %d", nk, termsMaxK)
	}
}

func TestTrimFlips(t *testing.T) {
	fl := []int32{1, 4, 9, 30}
	cases := []struct {
		limit int
		want  int
	}{{1, 0}, {2, 1}, {4, 1}, {5, 2}, {31, 4}, {100, 4}}
	for _, c := range cases {
		if got := len(TrimFlips(fl, c.limit)); got != c.want {
			t.Errorf("TrimFlips(limit=%d) kept %d, want %d", c.limit, got, c.want)
		}
	}
	if got := TrimFlips(nil, 5); len(got) != 0 {
		t.Errorf("TrimFlips(nil) = %v", got)
	}
}
