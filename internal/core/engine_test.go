package core

import (
	"context"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"knnshapley/internal/dataset"
	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

// --- Seed-equivalence pins -------------------------------------------------
//
// seedExactClassSV and seedExactRegressSV are verbatim copies of the
// pre-engine implementations. The tests below pin the engine-backed
// *SVMulti wrappers to the seed outputs within 1e-12 (in practice
// bit-for-bit: the kernels perform the identical arithmetic and the engine
// reduces in stream order) for every worker count and batch size.

func seedExactClassSV(tp *knn.TestPoint) []float64 {
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return sv
	}
	order := tp.Order()
	k := float64(tp.K)
	sv[order[n-1]] = ind(tp.Correct[order[n-1]]) / float64(max(n, tp.K))
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i]
		minKi := float64(min(tp.K, i))
		sv[cur] = sv[next] + (ind(tp.Correct[cur])-ind(tp.Correct[next]))/k*minKi/float64(i)
	}
	return sv
}

func seedExactRegressSV(tp *knn.TestPoint) []float64 {
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return sv
	}
	order := tp.Order()
	k := float64(tp.K)
	t := tp.YTest
	y := make([]float64, n+1)
	for r, id := range order {
		y[r+1] = tp.Y[id]
	}
	if n == 1 {
		d := y[1]/k - t
		sv[order[0]] = -d*d + t*t
		return sv
	}
	var sumOthers float64
	for r := 1; r < n; r++ {
		sumOthers += y[r]
	}
	nf := float64(n)
	yn := y[n]
	var base float64
	if n > tp.K {
		dN := yn/k - t
		base = -(k-1)/(nf*k)*yn*(yn/k-2*t+sumOthers/(nf-1)) - dN*dN/nf + t*t/nf
	} else {
		base = -(yn/k)*(yn/k) - 2*yn/k*(sumOthers/(2*k)-t)
	}
	sv[order[n-1]] = base
	prefix := make([]float64, n+2)
	for r := 1; r <= n; r++ {
		prefix[r] = prefix[r-1] + y[r]
	}
	suffix := make([]float64, n+3)
	for r := n; r >= 3; r-- {
		lf := float64(r)
		w := float64(min(tp.K, r-1)) * float64(min(tp.K-1, r-2)) / ((lf - 1) * (lf - 2))
		suffix[r] = suffix[r+1] + w*y[r]
	}
	for i := n - 1; i >= 1; i-- {
		fi := float64(i)
		minKi := float64(min(tp.K, i))
		var aSum float64
		if i >= 2 {
			aSum += float64(min(tp.K-1, i-1)) / (fi - 1) * prefix[i-1]
		}
		aSum += y[i] + y[i+1]
		if i+2 <= n {
			aSum += fi / minKi * suffix[i+2]
		}
		delta := (y[i+1] - y[i]) / k * (minKi / fi) * (aSum/k - 2*t)
		sv[order[i-1]] = sv[order[i]] + delta
	}
	return sv
}

// seedAverage is the seed's multi-test reduction: sum per-test vectors in
// test order, then scale by 1/len — the float op sequence the engine must
// reproduce.
func seedAverage(tps []*knn.TestPoint, f func(*knn.TestPoint) []float64) []float64 {
	if len(tps) == 0 {
		return nil
	}
	sv := make([]float64, tps[0].N())
	for _, tp := range tps {
		for i, v := range f(tp) {
			sv[i] += v
		}
	}
	inv := 1 / float64(len(tps))
	for i := range sv {
		sv[i] *= inv
	}
	return sv
}

var engineConfigs = []Options{{Workers: 1}, {Workers: 3}, {Workers: 16}}

func TestEngineMatchesSeedExactClass(t *testing.T) {
	rng := rand.New(rand.NewPCG(7001, 1))
	tps := make([]*knn.TestPoint, 23)
	for j := range tps {
		tps[j] = randomClassTP(37, 3, 3, rng)
	}
	want := seedAverage(tps, seedExactClassSV)
	for _, opts := range engineConfigs {
		got := ExactClassSVMulti(tps, opts)
		assertClose(t, got, want, 1e-12, "engine exact class vs seed")
	}
}

func TestEngineMatchesSeedExactRegress(t *testing.T) {
	rng := rand.New(rand.NewPCG(7002, 2))
	tps := make([]*knn.TestPoint, 19)
	for j := range tps {
		tps[j] = randomRegressTP(31, 2, rng)
	}
	want := seedAverage(tps, seedExactRegressSV)
	for _, opts := range engineConfigs {
		got := ExactRegressSVMulti(tps, opts)
		assertClose(t, got, want, 1e-12, "engine exact regress vs seed")
	}
}

func TestEngineMatchesSeedTruncated(t *testing.T) {
	rng := rand.New(rand.NewPCG(7003, 3))
	tps := make([]*knn.TestPoint, 17)
	for j := range tps {
		tps[j] = randomClassTP(41, 3, 2, rng)
	}
	const eps = 0.2
	// The seed TruncatedClassSVMulti averaged the (unchanged) per-test
	// truncation; pin the engine wrapper to that reduction.
	want := seedAverage(tps, func(tp *knn.TestPoint) []float64 {
		order := tp.Order()
		correct := make([]bool, len(order))
		for rank, id := range order {
			correct[rank] = tp.Correct[id]
		}
		return truncatedFromRanking(order, correct, tp.N(), tp.K, eps)
	})
	for _, opts := range engineConfigs {
		got := TruncatedClassSVMulti(tps, eps, opts)
		assertClose(t, got, want, 1e-12, "engine truncated vs seed")
	}
}

func TestEngineMatchesSeedWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(7004, 4))
	tps := make([]*knn.TestPoint, 6)
	for j := range tps {
		tps[j] = randomWeightedTP(11, 2, j%2 == 1, rng)
	}
	// Weighted class and regress must not be mixed in one call.
	classTPs := []*knn.TestPoint{tps[0], tps[2], tps[4]}
	want := seedAverage(classTPs, func(tp *knn.TestPoint) []float64 {
		return countingSV(tp, dataOnlyWeights(tp.N()))
	})
	for _, opts := range engineConfigs {
		got := ExactWeightedSVMulti(classTPs, opts)
		assertClose(t, got, want, 1e-12, "engine weighted vs seed")
	}
}

// The engine's ordered reduction must make results independent of batch
// size and worker count down to the last bit.
func TestEngineDeterministicAcrossSchedules(t *testing.T) {
	rng := rand.New(rand.NewPCG(7005, 5))
	tps := make([]*knn.TestPoint, 29)
	for j := range tps {
		tps[j] = randomClassTP(53, 4, 3, rng)
	}
	kern := ExactClassKernel{N: 53}
	var want []float64
	for _, cfg := range []EngineConfig{
		{Workers: 1, BatchSize: 1},
		{Workers: 7, BatchSize: 4},
		{Workers: 16, BatchSize: 64},
	} {
		got, err := NewEngine[*knn.TestPoint](cfg).Run(context.Background(), NewSliceSource(tps), kern)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v: sv[%d] = %v differs from %v", cfg, i, got[i], want[i])
			}
		}
	}
}

// --- Bounded concurrency (regression for the seed's unbounded spawn) -------

// concurrencyKernel records the high-water mark of concurrent Compute calls
// and of live goroutines.
type concurrencyKernel struct {
	n          int
	active     atomic.Int64
	maxActive  atomic.Int64
	maxGoronum atomic.Int64
}

func (k *concurrencyKernel) OutLen() int { return k.n }
func (k *concurrencyKernel) Compute(_ context.Context, _ int, _ int, _ *Scratch, _ []float64) error {
	cur := k.active.Add(1)
	atomicMax(&k.maxActive, cur)
	atomicMax(&k.maxGoronum, int64(runtime.NumGoroutine()))
	time.Sleep(50 * time.Microsecond)
	k.active.Add(-1)
	return nil
}

// The seed's averageOver spawned one goroutine per test point before
// throttling on a semaphore; the engine must never create more than Workers
// worker goroutines no matter how many items stream through.
func TestEngineBoundsGoroutines(t *testing.T) {
	const workers = 3
	const items = 500
	base := runtime.NumGoroutine()
	kern := &concurrencyKernel{n: 1}
	work := make([]int, items)
	_, count, err := NewEngine[int](EngineConfig{Workers: workers, BatchSize: 32}).
		RunSum(context.Background(), NewSliceSource(work), kern)
	if err != nil {
		t.Fatal(err)
	}
	if count != items {
		t.Fatalf("processed %d of %d items", count, items)
	}
	if got := kern.maxActive.Load(); got > workers {
		t.Fatalf("%d concurrent kernel computations, want <= %d", got, workers)
	}
	// Generous slack for test-framework and GC goroutines; the seed bug
	// would show ~items extra goroutines here.
	if got := kern.maxGoronum.Load(); got > int64(base+workers+20) {
		t.Fatalf("%d live goroutines (base %d), the pool is not bounded", got, base)
	}
}

// --- Streaming memory bound ------------------------------------------------

// batchTrackingSource wraps a Source and records the largest batch it was
// asked for, verifying the engine never requests more than BatchSize items.
type batchTrackingSource struct {
	inner    *knn.Stream
	maxBatch int
}

func (s *batchTrackingSource) NextBatch(ctx context.Context, dst []*knn.TestPoint) (int, error) {
	if len(dst) > s.maxBatch {
		s.maxBatch = len(dst)
	}
	return s.inner.NextBatch(ctx, dst)
}

// Peak memory for a streaming exact run must be bounded by BatchSize·N
// distances, not Ntest·N: with Ntest=1000, N=10000 the eager seed path
// allocated ≥ 80 MB of distances; the streaming engine run below stays
// under a few MB of steady-state buffers (asserted via cumulative
// allocation, which upper-bounds the peak).
func TestEngineStreamingMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates two datasets")
	}
	const (
		nTrain    = 10000
		nTest     = 1000
		batchSize = 16
	)
	train := dataset.MNISTLike(nTrain, 1)
	test := dataset.MNISTLike(nTest, 2)
	stream, err := knn.NewStream(knn.UnweightedClass, 3, nil, vec.L2, train, test)
	if err != nil {
		t.Fatal(err)
	}
	src := &batchTrackingSource{inner: stream}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	eng := NewEngine[*knn.TestPoint](EngineConfig{Workers: 4, BatchSize: batchSize})
	sv, err := eng.Run(context.Background(), src, ExactClassKernel{N: nTrain})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if len(sv) != nTrain {
		t.Fatalf("%d values, want %d", len(sv), nTrain)
	}
	if src.maxBatch > batchSize {
		t.Fatalf("engine requested a batch of %d test points, want <= %d", src.maxBatch, batchSize)
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	eager := uint64(nTest) * nTrain * 8 // bytes of the seed's full distance matrix
	if allocated > eager/2 {
		t.Fatalf("streaming run allocated %d bytes cumulatively, want well under the eager %d", allocated, eager)
	}
}
