package core

import (
	"knnshapley/internal/knn"
)

// CompositeResult carries the valuation of a composite game (Eq. 28): the
// per-seller Shapley values and the analyst's share. Group rationality
// guarantees Analyst + Σ Sellers = ν(I).
type CompositeResult struct {
	Sellers []float64
	Analyst float64
}

// CompositeClassSV computes the exact Shapley values of the composite game
// for unweighted KNN classification (Theorem 9): each seller's recursion is
// the Theorem 1 recursion reweighted by (min{i,K}+1)/(2(i+1)), and the
// analyst receives the remainder ν(I) − Σ s_i (Eq. 87).
func CompositeClassSV(tp *knn.TestPoint) CompositeResult {
	requireKind(tp, knn.UnweightedClass)
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return CompositeResult{Sellers: sv}
	}
	order := tp.Order()
	k := float64(tp.K)
	// Base case Eq. (85) generalized to N < K exactly as in the data-only
	// game: Σ_{k=0}^{min(K,N)−1} (k+1)/(N(N+1)) marginals of 1[correct]/K.
	minKN := float64(min(tp.K, n))
	nf := float64(n)
	sv[order[n-1]] = ind(tp.Correct[order[n-1]]) * minKN * (minKN + 1) / (2 * k * nf * (nf + 1))
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i]
		minKi := float64(min(tp.K, i))
		fi := float64(i)
		delta := (ind(tp.Correct[cur]) - ind(tp.Correct[next])) / k *
			minKi * (minKi + 1) / (2 * fi * (fi + 1))
		sv[cur] = sv[next] + delta
	}
	return CompositeResult{Sellers: sv, Analyst: tp.FullUtility() - sum(sv)}
}

// CompositeRegressSV computes the exact Shapley values of the composite game
// for unweighted KNN regression (Theorem 10), evaluated in O(N) with
// prefix/suffix sums like ExactRegressSV.
func CompositeRegressSV(tp *knn.TestPoint) CompositeResult {
	requireKind(tp, knn.UnweightedRegress)
	n := tp.N()
	sv := make([]float64, n)
	if n == 0 {
		return CompositeResult{Sellers: sv}
	}
	if n <= tp.K || n < 3 {
		// Small or K-saturated instances: fall back to the weight-parametric
		// counting algorithm, which is exact for every regime (the closed
		// forms below assume N > K like the paper's derivation).
		sv = compositeCountingSV(tp)
		return CompositeResult{Sellers: sv, Analyst: tp.FullUtility() - sum(sv)}
	}
	order := tp.Order()
	k := float64(tp.K)
	t := tp.YTest
	y := make([]float64, n+1)
	for r, id := range order {
		y[r+1] = tp.Y[id]
	}
	nf := float64(n)

	// Base case Eq. (90).
	var sumOthers float64
	for r := 1; r < n; r++ {
		sumOthers += y[r]
	}
	yn := y[n]
	dN := yn/k - t
	base := -yn/(k*(nf+1))*((k+2)*(k-1)/(2*nf)*(yn/k-2*t)+
		2*(k-1)*(k+1)/(3*nf*(nf-1))*sumOthers) -
		dN*dN/(nf*(nf+1))
	sv[order[n-1]] = base

	// Prefix sums and the Eq. (91) suffix weights
	// w_l = 2·min(K+1,l)·min(K,l−1)·min(K−1,l−2)/(3l(l−1)(l−2)).
	prefix := make([]float64, n+2)
	for r := 1; r <= n; r++ {
		prefix[r] = prefix[r-1] + y[r]
	}
	suffix := make([]float64, n+3)
	for r := n; r >= 3; r-- {
		lf := float64(r)
		w := 2 * float64(min(tp.K+1, r)) * float64(min(tp.K, r-1)) * float64(min(tp.K-1, r-2)) /
			(3 * lf * (lf - 1) * (lf - 2))
		suffix[r] = suffix[r+1] + w*y[r]
	}

	for i := n - 1; i >= 1; i-- {
		fi := float64(i)
		minK1i := float64(min(tp.K+1, i+1))
		minKi := float64(min(tp.K, i))
		inner := (y[i]/k + y[i+1]/k - 2*t) * minK1i * minKi / (2 * fi * (fi + 1))
		if i >= 2 {
			minK1im := float64(min(tp.K-1, i-1))
			inner += prefix[i-1] / k * 2 * minK1i * minKi * minK1im / (3 * (fi - 1) * fi * (fi + 1))
		}
		if i+2 <= n {
			inner += suffix[i+2] / k
		}
		sv[order[i-1]] = sv[order[i]] + (y[i+1]-y[i])/k*inner
	}
	return CompositeResult{Sellers: sv, Analyst: tp.FullUtility() - sum(sv)}
}

// CompositeWeightedSV computes the exact Shapley values of the composite
// game for weighted KNN classification or regression (Theorem 11): the
// Theorem 7 counting algorithm with the composite coalition weights
// 1/((N+1)·C(N,k+1)) and 1/(N·C(N−1,k+1)).
func CompositeWeightedSV(tp *knn.TestPoint) CompositeResult {
	if !tp.Kind.IsWeighted() {
		panic("core: CompositeWeightedSV needs a weighted utility")
	}
	sv := compositeCountingSV(tp)
	return CompositeResult{Sellers: sv, Analyst: tp.FullUtility() - sum(sv)}
}

// compositeCountingSV runs the counting algorithm with composite weights and
// restores the empty-coalition convention of Eq. (28): in the composite game
// a seller's S = ∅ marginal is ν({i}) − ν_c({C}) = ν({i}) − 0, while the
// counting machinery subtracts the literal ν(∅); the difference is the
// constant w_c(0)·ν(∅) = ν(∅)/(N(N+1)) per seller (zero for classification,
// −y_test²/(N(N+1)) for regression utilities).
func compositeCountingSV(tp *knn.TestPoint) []float64 {
	n := tp.N()
	sv := countingSV(tp, compositeWeights(n))
	if n > 0 {
		corr := tp.EmptyUtility() / (float64(n) * float64(n+1))
		for i := range sv {
			sv[i] += corr
		}
	}
	return sv
}

// CompositeMultiSellerSV computes the exact Shapley values of the composite
// multi-data-per-curator game (Theorem 12): Theorem 8's enumeration with
// seller-coalition weights 1/((M+1)·C(M,t+1)).
func CompositeMultiSellerSV(tp *knn.TestPoint, owners []int, m int) (CompositeResult, error) {
	sv, err := multiSellerSV(tp, owners, m, compositeGroupWeights)
	if err != nil {
		return CompositeResult{}, err
	}
	// Same empty-coalition convention fix as compositeCountingSV, at the
	// seller level: + ν(∅)/(M(M+1)) per seller.
	corr := tp.EmptyUtility() / (float64(m) * float64(m+1))
	for j := range sv {
		sv[j] += corr
	}
	return CompositeResult{Sellers: sv, Analyst: tp.FullUtility() - sum(sv)}, nil
}

// compositeGroupWeights returns w[t] = 1/((M+1)·C(M,t+1)) =
// (t+1)!(M−t−1)!/(M+1)!, the composite analog of dataOnlyGroupWeights.
func compositeGroupWeights(m int) []float64 {
	w := make([]float64, m)
	w[0] = 1 / (float64(m) * float64(m+1))
	for t := 1; t < m; t++ {
		// w[t]/w[t−1] = (t+1)/(M−t).
		w[t] = w[t-1] * float64(t+1) / float64(m-t)
	}
	return w
}

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
