package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"knnshapley/internal/dataset"
	"knnshapley/internal/kdtree"
	"knnshapley/internal/lsh"
)

// Valuer-level index persistence: the registry's index store keeps the
// serialized LSH tables / k-d tree beside their dataset, and a session-cache
// miss reloads the bytes instead of repeating the build (the expensive part:
// tuning samples, hashing every point into every table, the per-level sort).
// The payloads here are what the store's containers carry.
//
// The LSH payload prepends a fixed-size tuned-metadata block (the contrast
// estimate and derived exponents that Tune would otherwise re-sample) to the
// lsh codec's own bytes; the kd payload is exactly the kdtree codec's bytes.
// Both kinds are keyed canonically so every session deriving the same
// effective build inputs shares one artifact.

// tunedMetaLen is the fixed size of the LSH tuned-metadata block: five
// float64 fields plus a CRC-32 of them. Fixed-size on purpose — it is read
// with io.ReadFull directly so the reader consumes exactly these bytes
// before handing the rest of the stream to lsh.ReadIndex.
const tunedMetaLen = 5*8 + 4

// LSHIndexKey returns the canonical parameter key of the LSH index this
// config builds. Everything that feeds lsh.Tune and lsh.Build is covered —
// K and Eps only through K* (configs with equal K* share one index), plus
// delta/alpha/maxTables/seed — so equal keys mean byte-identical builds.
func (c LSHConfig) LSHIndexKey() string {
	c = c.withDefaults()
	return fmt.Sprintf("kstar=%d delta=%g alpha=%g maxtables=%d seed=%d",
		KStar(c.K, c.Eps), c.Delta, c.Alpha, c.MaxTables, c.Seed)
}

// KDIndexKey returns the canonical parameter key of a k-d tree index. The
// tree depends only on the data layout and leaf size — not on K or eps — so
// one persisted tree serves every (K, eps) request against its dataset.
func KDIndexKey(leafSize int) string {
	if leafSize <= 0 {
		leafSize = kdtree.DefaultLeafSize
	}
	return fmt.Sprintf("leaf=%d", leafSize)
}

// EncodeIndex serializes the valuer's index and tuned metadata to w.
func (v *LSHValuer) EncodeIndex(w io.Writer) error {
	var meta [tunedMetaLen]byte
	for i, f := range []float64{v.tuned.Contrast.DMean, v.tuned.Contrast.DK, v.tuned.Contrast.CK, v.tuned.RRel, v.tuned.G} {
		binary.LittleEndian.PutUint64(meta[i*8:], math.Float64bits(f))
	}
	binary.LittleEndian.PutUint32(meta[5*8:], crc32.ChecksumIEEE(meta[:5*8]))
	if _, err := w.Write(meta[:]); err != nil {
		return err
	}
	_, err := v.index.WriteTo(w)
	return err
}

// NewLSHValuerFromEncoded reconstructs an LSHValuer from bytes written by
// EncodeIndex, reattaching the training set (which must be the same rows,
// in the same order, as at build time — the decoder verifies shape and the
// CRC trailers catch content drift). cfg must describe the same build as
// the encoding session's; callers enforce that by keying storage on
// LSHIndexKey.
func NewLSHValuerFromEncoded(r io.Reader, train *dataset.Dataset, cfg LSHConfig) (*LSHValuer, error) {
	cfg = cfg.withDefaults()
	if cfg.K <= 0 || cfg.Eps <= 0 || cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("core: invalid LSH config %+v", cfg)
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.IsRegression() {
		return nil, fmt.Errorf("core: the LSH approximation applies to classification only (Section 3.2)")
	}
	var meta [tunedMetaLen]byte
	if _, err := io.ReadFull(r, meta[:]); err != nil {
		return nil, fmt.Errorf("core: lsh index meta: %w", err)
	}
	if got := binary.LittleEndian.Uint32(meta[5*8:]); got != crc32.ChecksumIEEE(meta[:5*8]) {
		return nil, fmt.Errorf("core: lsh index meta: crc mismatch")
	}
	fields := make([]float64, 5)
	for i := range fields {
		fields[i] = math.Float64frombits(binary.LittleEndian.Uint64(meta[i*8:]))
	}
	index, err := lsh.ReadIndex(r, train.X)
	if err != nil {
		return nil, err
	}
	tuned := lsh.Tuned{
		Params:   index.Params(),
		Contrast: lsh.Contrast{DMean: fields[0], DK: fields[1], CK: fields[2]},
		RRel:     fields[3],
		G:        fields[4],
	}
	return &LSHValuer{cfg: cfg, train: train, index: index, tuned: tuned, kStar: KStar(cfg.K, cfg.Eps)}, nil
}

// EncodeIndex serializes the valuer's k-d tree to w.
func (v *KDValuer) EncodeIndex(w io.Writer) error {
	_, err := v.tree.WriteTo(w)
	return err
}

// NewKDValuerFromEncoded reconstructs a KDValuer from bytes written by
// EncodeIndex, reattaching the training set. The persisted tree is
// (K, eps)-independent, so any valid pair may be supplied.
func NewKDValuerFromEncoded(r io.Reader, train *dataset.Dataset, k int, eps float64) (*KDValuer, error) {
	if k <= 0 || eps <= 0 {
		return nil, fmt.Errorf("core: invalid kd-valuer config k=%d eps=%v", k, eps)
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.IsRegression() {
		return nil, fmt.Errorf("core: the truncated approximation applies to classification")
	}
	tree, err := kdtree.ReadIndex(r, train.X)
	if err != nil {
		return nil, err
	}
	return &KDValuer{k: k, eps: eps, kStar: KStar(k, eps), train: train, tree: tree}, nil
}
