package core

import (
	"context"
	"testing"

	"knnshapley/internal/dataset"
	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
	"knnshapley/internal/vec"
)

// The kd-tree backend retrieves exactly, so its values must equal the
// sort-based truncation bit-for-bit.
func TestKDValuerMatchesTruncated(t *testing.T) {
	train := dataset.DeepLike(1500, 51)
	test := dataset.DeepLike(12, 52)
	v, err := NewKDValuer(train, 2, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.KStar() != 10 {
		t.Fatalf("KStar = %d", v.KStar())
	}
	got, err := v.Value(context.Background(), test, 2)
	if err != nil {
		t.Fatal(err)
	}
	tps, err := knn.BuildTestPoints(knn.UnweightedClass, 2, nil, vec.L2, train, test)
	if err != nil {
		t.Fatal(err)
	}
	want := TruncatedClassSVMulti(tps, 0.1, Options{})
	assertClose(t, got, want, 1e-12, "kd vs truncated")

	// And the Theorem 2 contract against the exact values.
	exact := ExactClassSVMulti(tps, Options{})
	if e := stats.MaxAbsDiff(got, exact); e > 0.1 {
		t.Fatalf("error %v > eps", e)
	}
}

func TestKDValuerValidation(t *testing.T) {
	train := dataset.MNISTLike(50, 1)
	if _, err := NewKDValuer(train, 0, 0.1, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := NewKDValuer(train, 1, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	reg := dataset.Regression(dataset.RegressionConfig{N: 10, Dim: 3, Seed: 1})
	if _, err := NewKDValuer(reg, 1, 0.1, 0); err == nil {
		t.Error("regression accepted")
	}
	v, err := NewKDValuer(train, 1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Value(context.Background(), reg, 1); err == nil {
		t.Error("regression test set accepted")
	}
	short := dataset.Regression(dataset.RegressionConfig{N: 4, Dim: 2, Seed: 2})
	short.Targets = nil
	short.Labels = []int{0, 1, 0, 1}
	short.Classes = 2
	if _, err := v.Value(context.Background(), short, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
}
