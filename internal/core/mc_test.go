package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/knn"
	"knnshapley/internal/stats"
)

func TestImprovedMCConvergesToExactClass(t *testing.T) {
	rng := rand.New(rand.NewPCG(1616, 16))
	tp := randomClassTP(30, 3, 3, rng)
	want := ExactClassSV(tp)
	res, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed, T: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > 0.03 {
		t.Fatalf("max error %v after %d permutations", got, res.Permutations)
	}
}

func TestImprovedMCConvergesToExactWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1717, 17))
	tp := randomWeightedTP(12, 3, false, rng)
	want := ExactWeightedSV(tp)
	res, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed, T: 6000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > 0.05 {
		t.Fatalf("max error %v", got)
	}
}

func TestImprovedMCRegression(t *testing.T) {
	rng := rand.New(rand.NewPCG(1818, 18))
	tp := randomRegressTP(15, 2, rng)
	want := ExactRegressSV(tp)
	res, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed, T: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > 0.25 {
		t.Fatalf("max error %v (values %v vs %v)", got, res.SV[:3], want[:3])
	}
}

// The (eps, delta) contract: with the Bennett budget the estimate should be
// eps-close to the exact values (with margin, since delta > 0).
func TestImprovedMCBennettContract(t *testing.T) {
	rng := rand.New(rand.NewPCG(1919, 19))
	tp := randomClassTP(200, 3, 5, rng)
	want := ExactClassSV(tp)
	cfg := MCConfig{Eps: 0.05, Delta: 0.1, Bound: BoundBennett, Seed: 4}
	res, err := ImprovedMC([]*knn.TestPoint{tp}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations != res.Budget {
		t.Fatalf("no heuristic: ran %d of %d", res.Permutations, res.Budget)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > cfg.Eps {
		t.Fatalf("max error %v > eps %v (T=%d)", got, cfg.Eps, res.Permutations)
	}
}

func TestImprovedMCHeuristicStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewPCG(2020, 20))
	tp := randomClassTP(100, 3, 1, rng)
	full := MCConfig{Eps: 0.1, Delta: 0.01, Bound: BoundBennett, Seed: 5}
	withStop := full
	withStop.Heuristic = true
	a, err := ImprovedMC([]*knn.TestPoint{tp}, full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ImprovedMC([]*knn.TestPoint{tp}, withStop)
	if err != nil {
		t.Fatal(err)
	}
	if b.Permutations >= a.Permutations {
		t.Fatalf("heuristic did not stop early: %d vs %d", b.Permutations, a.Permutations)
	}
	want := ExactClassSV(tp)
	if got := stats.MaxAbsDiff(b.SV, want); got > full.Eps {
		t.Fatalf("heuristic estimate error %v > eps", got)
	}
}

func TestMCBudgetOrdering(t *testing.T) {
	// Hoeffding > Bennett for large N; both capped by T.
	base := MCConfig{Eps: 0.05, Delta: 0.1, RangeHalfWidth: 0.2}
	h := base
	h.Bound = BoundHoeffding
	b := base
	b.Bound = BoundBennett
	n, k := 100000, 5
	if hb, bb := h.Budget(n, k), b.Budget(n, k); bb >= hb {
		t.Fatalf("Bennett %d >= Hoeffding %d", bb, hb)
	}
	capped := h
	capped.T = 7
	if capped.Budget(n, k) != 7 {
		t.Fatal("cap ignored")
	}
}

func TestMCConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tp := randomClassTP(5, 2, 1, rng)
	if _, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundBennett}); err == nil {
		t.Error("missing eps/delta accepted")
	}
	if _, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed}); err == nil {
		t.Error("BoundFixed without T accepted")
	}
	if _, err := ImprovedMC(nil, MCConfig{Bound: BoundFixed, T: 1}); err == nil {
		t.Error("no test points accepted")
	}
	reg := randomRegressTP(5, 1, rng)
	if _, err := ImprovedMC([]*knn.TestPoint{reg}, MCConfig{Bound: BoundBennett, Eps: 0.1, Delta: 0.1}); err == nil {
		t.Error("regression without RangeHalfWidth accepted")
	}
}

func TestMultiSellerMCConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(2121, 21))
	tp := randomClassTP(24, 3, 2, rng)
	owners := randomOwners(24, 6, rng)
	want, err := MultiSellerSV(tp, owners, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiSellerMC(context.Background(), []*knn.TestPoint{tp}, owners, 6, MCConfig{Bound: BoundFixed, T: 5000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > 0.03 {
		t.Fatalf("max error %v", got)
	}
}

func TestMultiSellerMCValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tp := randomClassTP(6, 2, 1, rng)
	if _, err := MultiSellerMC(context.Background(), []*knn.TestPoint{tp}, []int{0}, 2, MCConfig{Bound: BoundFixed, T: 1}); err == nil {
		t.Error("owner mismatch accepted")
	}
	if _, err := MultiSellerMC(context.Background(), []*knn.TestPoint{tp}, []int{0, 0, 0, 0, 0, 9}, 2, MCConfig{Bound: BoundFixed, T: 1}); err == nil {
		t.Error("owner out of range accepted")
	}
}

func TestBaselineMCConvergesAndIsCostlier(t *testing.T) {
	rng := rand.New(rand.NewPCG(2222, 22))
	tp := randomClassTP(40, 3, 2, rng)
	want := ExactClassSV(tp)
	res, err := BaselineMC(context.Background(), []*knn.TestPoint{tp}, 0.1, 0.1, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.MaxAbsDiff(res.SV, want); got > 0.1 {
		t.Fatalf("baseline max error %v", got)
	}
	imp, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed, T: res.Permutations, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if imp.UtilityEvals >= res.UtilityEvals {
		t.Fatalf("Algorithm 2 should touch fewer utilities: %d vs %d", imp.UtilityEvals, res.UtilityEvals)
	}
}

func TestBaselineMCRejectsNonClassification(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	reg := randomRegressTP(5, 1, rng)
	if _, err := BaselineMC(context.Background(), []*knn.TestPoint{reg}, 0.1, 0.1, 10, 1); err == nil {
		t.Error("regression accepted")
	}
}

// Telescoping: the sum of improved-MC estimates equals ν(I) − ν(∅) exactly
// for any permutation count.
func TestImprovedMCEfficiencyExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(2323, 23))
	tp := randomClassTP(50, 3, 4, rng)
	res, err := ImprovedMC([]*knn.TestPoint{tp}, MCConfig{Bound: BoundFixed, T: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, 50)
	for i := range all {
		all[i] = i
	}
	got := sum(res.SV)
	want := tp.SubsetUtility(all) - tp.EmptyUtility()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Σ estimates = %v want %v", got, want)
	}
}
