package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/game"
	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

// randomWeightedTP builds a random weighted classification or regression
// instance with an inverse-distance weight function.
func randomWeightedTP(n, k int, regression bool, rng *rand.Rand) *knn.TestPoint {
	X := make([][]float64, n)
	labels := make([]int, n)
	targets := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		labels[i] = rng.IntN(3)
		targets[i] = rng.NormFloat64() * 2
	}
	q := []float64{rng.Float64() * 10, rng.Float64() * 10}
	w := knn.InverseDistance(0.5)
	if regression {
		return knn.BuildTestPoint(knn.WeightedRegress, k, w, vec.L2, X, nil, targets, q, 0, rng.NormFloat64())
	}
	return knn.BuildTestPoint(knn.WeightedClass, k, w, vec.L2, X, labels, nil, q, rng.IntN(3), 0)
}

// Theorem 7 must agree with brute force for both weighted utilities.
func TestExactWeightedSVMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(404, 4))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(8)
		k := 1 + rng.IntN(4)
		for _, regression := range []bool{false, true} {
			tp := randomWeightedTP(n, k, regression, rng)
			got := ExactWeightedSV(tp)
			want := game.ExactShapley(tpGame(tp))
			assertClose(t, got, want, 1e-8, "exact weighted")
		}
	}
}

// The counting machinery is utility-agnostic: on unweighted classification it
// must reproduce Theorem 1 exactly, including on instances too large to brute
// force.
func TestCountingMatchesClosedFormOnUnweighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(505, 5))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.IntN(20)
		k := 1 + rng.IntN(3)
		tp := randomClassTP(n, 3, k, rng)
		got := exactByCounting(tp)
		want := ExactClassSV(tp)
		assertClose(t, got, want, 1e-9, "counting vs closed form")
	}
}

func TestExactWeightedSVPanicsOnUnweighted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	rng := rand.New(rand.NewPCG(1, 1))
	ExactWeightedSV(randomClassTP(5, 2, 1, rng))
}

func TestEstimateWeightedCostGrowth(t *testing.T) {
	if EstimateWeightedCost(50, 3) <= EstimateWeightedCost(50, 2) {
		t.Fatal("cost should grow with K")
	}
	if EstimateWeightedCost(100, 3) <= EstimateWeightedCost(50, 3) {
		t.Fatal("cost should grow with N")
	}
	if EstimateWeightedCost(1, 3) != 1 {
		t.Fatal("degenerate cost")
	}
}

func TestForEachCombination(t *testing.T) {
	var got [][]int
	forEachCombination(4, 2, func(c []int) {
		got = append(got, append([]int(nil), c...))
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("%d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("comb[%d] = %v want %v", i, got[i], want[i])
		}
	}
	count := 0
	forEachCombination(5, 0, func(c []int) { count++ })
	if count != 1 {
		t.Fatalf("k=0 visited %d times", count)
	}
	forEachCombination(3, 4, func(c []int) { t.Fatal("k>n should visit nothing") })
}

func TestBinomFloat(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {3, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := binomFloat(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
}

// Group rationality for the weighted algorithm on mid-size instances.
func TestExactWeightedSVEfficiency(t *testing.T) {
	rng := rand.New(rand.NewPCG(606, 6))
	for trial := 0; trial < 5; trial++ {
		n := 12 + rng.IntN(8)
		tp := randomWeightedTP(n, 3, trial%2 == 0, rng)
		sv := ExactWeightedSV(tp)
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		got := sum(sv)
		want := tp.SubsetUtility(all) - tp.EmptyUtility()
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("Σsv = %v want %v", got, want)
		}
	}
}
