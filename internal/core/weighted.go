package core

import (
	"fmt"

	"knnshapley/internal/knn"
)

// ExactWeightedSV computes the exact Shapley value of every training point
// for a weighted KNN utility (Eq. 26 classification / Eq. 27 regression) of
// a single test point, via the O(N^K)-style counting algorithm of Theorem 7:
// only coalitions' K nearest neighbors matter, there are at most
// Σ_{k≤K−1} C(N−2,k) distinct K-neighbor prefixes per adjacent pair, and
// larger coalitions are accounted for with a closed-form binomial multiplier
// rather than enumeration.
//
// The cost is Θ(N·C(N−2,K−1)·K); use EstimateWeightedCost to budget before
// calling and the improved Monte-Carlo estimator (Algorithm 2) when it is too
// expensive.
func ExactWeightedSV(tp *knn.TestPoint) []float64 {
	if !tp.Kind.IsWeighted() {
		panic(fmt.Sprintf("core: ExactWeightedSV needs a weighted utility, got %v", tp.Kind))
	}
	return exactByCounting(tp)
}

// EstimateWeightedCost returns the approximate number of utility evaluations
// Theorem 7 performs for a problem of size n with parameter k.
func EstimateWeightedCost(n, k int) float64 {
	if n < 2 {
		return 1
	}
	var total float64
	for kk := 0; kk <= k-1; kk++ {
		total += binomFloat(n-2, kk)
	}
	return total * float64(n)
}

// ExactWeightedSVMulti averages ExactWeightedSV over test points (Eq. 8)
// through the shared Engine.
func ExactWeightedSVMulti(tps []*knn.TestPoint, opts Options) []float64 {
	if len(tps) == 0 {
		return nil
	}
	return mustRun(tps, opts, WeightedKernel{N: tps[0].N()})
}

// svWeights abstracts the coalition-size weight family of a Shapley-style
// game so the Theorem 7 counting machinery serves both the data-only game
// (Theorem 7/8) and the composite game with an analyst (Theorems 11/12),
// which reweights a size-k coalition by (k+1)/(N+1).
type svWeights struct {
	// subset(k) is the per-coalition weight of a size-k coalition in the
	// base-case sum (k ≤ K−1, so no overflow concerns).
	subset func(k int) float64
	// pair(k) is w(k)+w(k+1), the per-coalition weight of a size-k coalition
	// in the Lemma 1 pairwise-difference sum.
	pair func(k int) float64
	// pairRatio(k) = pair(k+1)/pair(k), used to fold the Eq. (77) binomial
	// tail without materializing huge binomials.
	pairRatio func(k int) float64
}

// dataOnlyWeights is the classic Shapley family: subset weight
// k!(N−k−1)!/N! = 1/(N·C(N−1,k)), pair weight 1/((N−1)·C(N−2,k)).
func dataOnlyWeights(n int) svWeights {
	return svWeights{
		subset: func(k int) float64 { return 1 / (float64(n) * binomFloat(n-1, k)) },
		pair:   func(k int) float64 { return 1 / (float64(n-1) * binomFloat(n-2, k)) },
		pairRatio: func(k int) float64 {
			// C(N−2,k)/C(N−2,k+1) = (k+1)/(N−2−k).
			return float64(k+1) / float64(n-2-k)
		},
	}
}

// compositeWeights is the same family in the (N+1)-player composite game,
// restricted to coalitions containing the analyst: subset weight
// (k+1)!(N−k−1)!/(N+1)! = 1/((N+1)·C(N,k+1)), pair weight
// (k+1)!(N−k−2)!/N! = 1/(N·C(N−1,k+1)) (Theorem 11).
func compositeWeights(n int) svWeights {
	return svWeights{
		subset: func(k int) float64 { return 1 / (float64(n+1) * binomFloat(n, k+1)) },
		pair:   func(k int) float64 { return 1 / (float64(n) * binomFloat(n-1, k+1)) },
		pairRatio: func(k int) float64 {
			// C(N−1,k+1)/C(N−1,k+2) = (k+2)/(N−2−k).
			return float64(k+2) / float64(n-2-k)
		},
	}
}

// exactByCounting implements the Theorem 7 recursion for any KNN utility
// (it only relies on the locality property, so it also reproduces the
// unweighted results — used as a cross-check in tests).
func exactByCounting(tp *knn.TestPoint) []float64 {
	return countingSV(tp, dataOnlyWeights(tp.N()))
}

// countingSV is the weight-parametric Theorem 7/11 algorithm.
func countingSV(tp *knn.TestPoint, w svWeights) []float64 {
	sv := make([]float64, tp.N())
	countingSVInto(tp, w, NewScratch(), sv)
	return sv
}

// countingSVInto is countingSV writing into a zeroed sv of length tp.N(),
// taking the distance ordering from the worker scratch.
func countingSVInto(tp *knn.TestPoint, w svWeights, s *Scratch, sv []float64) {
	n := tp.N()
	if n == 0 {
		return
	}
	order := s.OrderOf(tp) // order[r] = training index of the (r+1)-th nearest
	k := tp.K
	if n == 1 {
		sv[order[0]] = w.subset(0) * (tp.SubsetUtility(order) - tp.EmptyUtility())
		return
	}

	// Base case Eq. (74)/(93): s_{α_N} = Σ_{k=0}^{K−1} w.subset(k)·
	// Σ_{|S|=k, S ⊆ I∖{α_N}} [ν(S∪{α_N}) − ν(S)], evaluated literally with
	// ν(∅) from the utility itself.
	farthest := order[n-1]
	rest := order[:n-1]
	var base float64
	subset := make([]int, 0, k+1)
	for size := 0; size <= k-1 && size <= n-1; size++ {
		ws := w.subset(size)
		forEachCombination(n-1, size, func(comb []int) {
			subset = subset[:0]
			for _, c := range comb {
				subset = append(subset, rest[c])
			}
			without := tp.SubsetUtility(subset)
			subset = append(subset, farthest)
			base += ws * (tp.SubsetUtility(subset) - without)
		})
	}
	sv[farthest] = base

	// Pair recursion Eq. (75)–(77): for each adjacent pair (α_i, α_{i+1}) sum
	// the utility difference over (a) all coalitions of size ≤ K−2 (each with
	// its plain 1/C(N−2,k) weight) and (b) all K−1-sized neighbor prefixes,
	// weighted by the number of larger coalitions sharing that prefix.
	others := make([]int, n-2) // training ids of everyone except the pair
	ranks := make([]int, n-2)  // their 1-based ranks
	for i := n - 1; i >= 1; i-- {
		cur, next := order[i-1], order[i] // ranks i and i+1 (1-based)
		others = others[:0]
		ranks = ranks[:0]
		for r, id := range order {
			if r == i-1 || r == i {
				continue
			}
			others = append(others, id)
			ranks = append(ranks, r+1)
		}
		var delta float64
		// (a) coalition sizes 0..K−2: every subset matters in full.
		for size := 0; size <= k-2 && size <= len(others); size++ {
			wp := w.pair(size)
			forEachCombination(len(others), size, func(comb []int) {
				delta += wp * pairDiff(tp, others, comb, cur, next, subset[:0])
			})
		}
		// (b) neighbor prefixes of size K−1 with the Eq. (77) multiplier:
		// a coalition of size k ≥ K−1 whose K−1 non-pair nearest points are
		// exactly S contributes iff its remaining k−K+1 members rank beyond
		// max(rank(S ∪ {α_i, α_{i+1}})); there are C(N−maxRank, k−K+1) such
		// coalitions at size k, each carrying weight w.pair(k).
		if size := k - 1; size >= 0 && size <= len(others) {
			forEachCombination(len(others), size, func(comb []int) {
				maxRank := i + 1 // the pair's larger rank
				for _, c := range comb {
					if ranks[c] > maxRank {
						maxRank = ranks[c]
					}
				}
				coef := tailCoefficient(n, k, maxRank, w)
				if coef != 0 {
					delta += coef * pairDiff(tp, others, comb, cur, next, subset[:0])
				}
			})
		}
		sv[cur] = sv[next] + delta
	}
}

// pairDiff returns ν(S∪{cur}) − ν(S∪{next}) where S is others[comb].
func pairDiff(tp *knn.TestPoint, others []int, comb []int, cur, next int, scratch []int) float64 {
	s := scratch
	for _, c := range comb {
		s = append(s, others[c])
	}
	s = append(s, cur)
	with := tp.SubsetUtility(s)
	s[len(s)-1] = next
	return with - tp.SubsetUtility(s)
}

// tailCoefficient is Σ_{j=0}^{N−maxRank} C(N−maxRank, j)·w.pair(K−1+j),
// the Eq. (77) multiplier folded over all coalition sizes k = K−1..N−2.
// Terms are accumulated via ratio updates so no large binomial is ever
// materialized.
func tailCoefficient(n, k, maxRank int, w svWeights) float64 {
	m := n - maxRank
	term := w.pair(k - 1)
	sum := term
	for j := 0; j < m; j++ {
		// term_{j+1} = term_j · (m−j)/(j+1) · pairRatio(K−1+j).
		if k-1+j >= n-2 {
			break
		}
		term *= float64(m-j) / float64(j+1) * w.pairRatio(k-1+j)
		sum += term
	}
	return sum
}

// binomFloat returns C(n, k) as a float64 (exact for the sizes used here).
func binomFloat(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// forEachCombination calls f with every size-k subset of {0..n-1} in
// lexicographic order. The slice passed to f is reused between calls.
func forEachCombination(n, k int, f func(comb []int)) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		f(nil)
		return
	}
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		f(comb)
		// Advance.
		i := k - 1
		for i >= 0 && comb[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}
