package core

import (
	"context"
	"fmt"

	"knnshapley/internal/dataset"
	"knnshapley/internal/kdtree"
)

// KDValuer computes (eps, 0)-approximate Shapley values for unweighted KNN
// classification by retrieving the K* = max{K, ⌈1/eps⌉} nearest neighbors
// from a k-d tree instead of sorting the full training set. Unlike the LSH
// valuer it is exact in retrieval (δ = 0, Theorem 2 alone bounds the error)
// and it excels in low dimension; Section 3.2 names kd-trees as the classic
// alternative to LSH for this role.
type KDValuer struct {
	k     int
	eps   float64
	kStar int
	train *dataset.Dataset
	tree  *kdtree.Tree
}

// NewKDValuer builds the tree over the training set.
func NewKDValuer(train *dataset.Dataset, k int, eps float64, leafSize int) (*KDValuer, error) {
	if k <= 0 || eps <= 0 {
		return nil, fmt.Errorf("core: invalid kd-valuer config k=%d eps=%v", k, eps)
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	if train.IsRegression() {
		return nil, fmt.Errorf("core: the truncated approximation applies to classification")
	}
	tree, err := kdtree.Build(train.X, leafSize)
	if err != nil {
		return nil, err
	}
	return &KDValuer{k: k, eps: eps, kStar: KStar(k, eps), train: train, tree: tree}, nil
}

// KStar returns the retrieval depth.
func (v *KDValuer) KStar() int { return v.kStar }

// ValueOne returns the (eps, 0)-approximate Shapley values for one query.
func (v *KDValuer) ValueOne(q []float64, label int) []float64 {
	sv := make([]float64, v.train.N())
	v.valueOneInto(q, label, NewScratch(), sv)
	return sv
}

// valueOneInto is the scratch-aware ValueOne writing into a zeroed dst.
func (v *KDValuer) valueOneInto(q []float64, label int, s *Scratch, dst []float64) {
	ids, _ := v.tree.Query(q, v.kStar)
	correct := s.Bools(len(ids))
	for r, id := range ids {
		correct[r] = v.train.Labels[id] == label
	}
	truncatedFromRankingInto(ids, correct, v.train.N(), v.k, v.eps, dst)
}

// Value averages ValueOne over a test set, streaming the queries through
// the shared Engine; a canceled ctx aborts within one engine batch.
func (v *KDValuer) Value(ctx context.Context, test *dataset.Dataset, workers int) ([]float64, error) {
	return v.ValueEngine(ctx, test, EngineConfig{Workers: workers})
}

// ValueEngine is Value with an explicit engine configuration, for callers
// that want a Progress callback or a custom batch size on the query stream.
func (v *KDValuer) ValueEngine(ctx context.Context, test *dataset.Dataset, ec EngineConfig) ([]float64, error) {
	if test.IsRegression() {
		return nil, fmt.Errorf("core: classification test set required")
	}
	if test.Dim() != v.train.Dim() {
		return nil, fmt.Errorf("core: test dim %d != train dim %d", test.Dim(), v.train.Dim())
	}
	if test.N() == 0 {
		return make([]float64, v.train.N()), nil
	}
	eng := NewEngine[labeledQuery](ec)
	return eng.Run(ctx, &querySource{test: test}, queryKernel{n: v.train.N(), value: v.valueOneInto})
}
