package lsh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Index serialization: building an index over millions of points costs
// minutes (Figure 6), so a data market wants to build once and reload. The
// format stores the parameters, every table's projections/offsets, and the
// bucket maps; the caller re-supplies the data vectors on load (they are the
// dataset's own storage, not the index's).

const indexMagic = uint32(0x4c534849) // "LSHI"

// WriteTo serializes the index (excluding the data vectors) to w.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	dim := len(idx.data[0])
	hdr := []uint64{
		uint64(indexMagic), 1,
		uint64(idx.params.M), uint64(idx.params.L),
		math.Float64bits(idx.params.R), idx.params.Seed,
		uint64(len(idx.data)), uint64(dim),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for t := range idx.tables {
		tb := &idx.tables[t]
		for j := 0; j < idx.params.M; j++ {
			for _, v := range tb.proj[j] {
				if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
					return cw.n, err
				}
			}
			if err := binary.Write(cw, binary.LittleEndian, tb.offset[j]); err != nil {
				return cw.n, err
			}
		}
		if err := binary.Write(cw, binary.LittleEndian, uint64(len(tb.buckets))); err != nil {
			return cw.n, err
		}
		for key, ids := range tb.buckets {
			if err := binary.Write(cw, binary.LittleEndian, key); err != nil {
				return cw.n, err
			}
			if err := binary.Write(cw, binary.LittleEndian, uint64(len(ids))); err != nil {
				return cw.n, err
			}
			for _, id := range ids {
				if err := binary.Write(cw, binary.LittleEndian, uint32(id)); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadIndex deserializes an index written by WriteTo, reattaching the data
// vectors (which must be the same rows, in the same order, as at build
// time).
func ReadIndex(r io.Reader, data [][]float64) (*Index, error) {
	br := bufio.NewReader(r)
	var hdr [8]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("lsh: header: %w", err)
		}
	}
	if uint32(hdr[0]) != indexMagic {
		return nil, fmt.Errorf("lsh: bad magic %#x", hdr[0])
	}
	if hdr[1] != 1 {
		return nil, fmt.Errorf("lsh: unsupported version %d", hdr[1])
	}
	params := Params{M: int(hdr[2]), L: int(hdr[3]), R: math.Float64frombits(hdr[4]), Seed: hdr[5]}
	n, dim := int(hdr[6]), int(hdr[7])
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("lsh: index built over %d rows, got %d", n, len(data))
	}
	if len(data) > 0 && len(data[0]) != dim {
		return nil, fmt.Errorf("lsh: index built over dim %d, got %d", dim, len(data[0]))
	}
	idx := &Index{params: params, data: data, tables: make([]table, params.L)}
	idx.scratch = sync.Pool{New: func() any {
		return &queryScratch{visited: make([]uint32, n), sig: make([]int32, params.M)}
	}}
	for t := range idx.tables {
		tb := table{
			proj:    make([][]float64, params.M),
			offset:  make([]float64, params.M),
			buckets: make(map[uint64][]int),
		}
		for j := 0; j < params.M; j++ {
			w := make([]float64, dim)
			for d := range w {
				if err := binary.Read(br, binary.LittleEndian, &w[d]); err != nil {
					return nil, fmt.Errorf("lsh: projection: %w", err)
				}
			}
			tb.proj[j] = w
			if err := binary.Read(br, binary.LittleEndian, &tb.offset[j]); err != nil {
				return nil, fmt.Errorf("lsh: offset: %w", err)
			}
		}
		var nb uint64
		if err := binary.Read(br, binary.LittleEndian, &nb); err != nil {
			return nil, fmt.Errorf("lsh: bucket count: %w", err)
		}
		if nb > uint64(n)+1 {
			return nil, fmt.Errorf("lsh: implausible bucket count %d", nb)
		}
		for b := uint64(0); b < nb; b++ {
			var key, sz uint64
			if err := binary.Read(br, binary.LittleEndian, &key); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &sz); err != nil {
				return nil, err
			}
			if sz > uint64(n) {
				return nil, fmt.Errorf("lsh: implausible bucket size %d", sz)
			}
			ids := make([]int, sz)
			for i := range ids {
				var id uint32
				if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
					return nil, err
				}
				if int(id) >= n {
					return nil, fmt.Errorf("lsh: id %d outside [0,%d)", id, n)
				}
				ids[i] = int(id)
			}
			tb.buckets[key] = ids
		}
		idx.tables[t] = tb
	}
	return idx, nil
}
