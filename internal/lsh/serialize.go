package lsh

import (
	"fmt"
	"io"
	"math"
	"sync"

	"knnshapley/internal/binio"
)

// Index serialization: building an index over millions of points costs
// minutes (Figure 6), so a data market wants to build once and reload. The
// format stores the parameters, every table's projections/offsets, and the
// bucket maps; the caller re-supplies the data vectors on load (they are the
// dataset's own storage, not the index's). Version 2 appended a CRC-32
// trailer so the registry's index store can content-verify persisted
// indexes the same way it verifies .knnsb dataset files.

const (
	indexMagic   = uint32(0x4c534849) // "LSHI"
	indexVersion = 2

	// maxDecodeBits / maxDecodeTables bound the decoded layout before any
	// allocation. Tune produces m = α·logN/log(1/f_h) hash bits (tens) and
	// caps l at 512 tables; the limits are generous multiples of anything it
	// can emit, small enough that a hostile header cannot force huge
	// allocations.
	maxDecodeBits   = 1 << 12
	maxDecodeTables = 1 << 16
)

// WriteTo serializes the index (excluding the data vectors) to w.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := binio.NewWriter(w)
	hdr := []uint64{
		uint64(indexMagic), indexVersion,
		uint64(idx.params.M), uint64(idx.params.L),
		math.Float64bits(idx.params.R), idx.params.Seed,
		uint64(len(idx.data)), uint64(len(idx.data[0])),
	}
	for _, v := range hdr {
		bw.U64(v)
	}
	for t := range idx.tables {
		tb := &idx.tables[t]
		for j := 0; j < idx.params.M; j++ {
			for _, v := range tb.proj[j] {
				bw.F64(v)
			}
			bw.F64(tb.offset[j])
		}
		bw.U64(uint64(len(tb.buckets)))
		for key, ids := range tb.buckets {
			bw.U64(key)
			bw.U64(uint64(len(ids)))
			for _, id := range ids {
				bw.U32(uint32(id))
			}
		}
	}
	err := bw.Finish()
	return bw.N(), err
}

// ReadIndex deserializes an index written by WriteTo, reattaching the data
// vectors (which must be the same rows, in the same order, as at build
// time). The decode is hardened against arbitrary bytes: table and bit
// counts are capped before allocation, every bucket id must be in range,
// each table must hash every point exactly once, and the CRC-32 trailer
// must match what was read.
func ReadIndex(r io.Reader, data [][]float64) (*Index, error) {
	br := binio.NewReader(r)
	var hdr [8]uint64
	for i := range hdr {
		hdr[i] = br.U64()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("lsh: header: %w", err)
	}
	if uint32(hdr[0]) != indexMagic {
		return nil, fmt.Errorf("lsh: bad magic %#x", hdr[0])
	}
	if hdr[1] != indexVersion {
		return nil, fmt.Errorf("lsh: unsupported version %d", hdr[1])
	}
	if hdr[2] > maxDecodeBits || hdr[3] > maxDecodeTables {
		return nil, fmt.Errorf("lsh: implausible layout: %d hash bits × %d tables", hdr[2], hdr[3])
	}
	params := Params{M: int(hdr[2]), L: int(hdr[3]), R: math.Float64frombits(hdr[4]), Seed: hdr[5]}
	if err := params.validate(); err != nil {
		return nil, err
	}
	if hdr[6] != uint64(len(data)) {
		return nil, fmt.Errorf("lsh: index built over %d rows, got %d", hdr[6], len(data))
	}
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("lsh: empty dataset")
	}
	dim := len(data[0])
	if hdr[7] != uint64(dim) {
		return nil, fmt.Errorf("lsh: index built over dim %d, got %d", hdr[7], dim)
	}
	idx := &Index{params: params, data: data, tables: make([]table, params.L)}
	idx.scratch = sync.Pool{New: func() any {
		return &queryScratch{visited: make([]uint32, n), sig: make([]int32, params.M)}
	}}
	for t := range idx.tables {
		tb := table{
			proj:    make([][]float64, params.M),
			offset:  make([]float64, params.M),
			buckets: make(map[uint64][]int),
		}
		for j := 0; j < params.M; j++ {
			w := make([]float64, dim)
			for d := range w {
				w[d] = br.F64()
			}
			tb.proj[j] = w
			tb.offset[j] = br.F64()
		}
		nb := br.U64()
		if err := br.Err(); err != nil {
			return nil, fmt.Errorf("lsh: table %d: %w", t, err)
		}
		if nb > uint64(n) {
			return nil, fmt.Errorf("lsh: implausible bucket count %d", nb)
		}
		// Build hashes every point into exactly one bucket per table; the
		// running total doubles as the allocation bound for bucket sizes.
		remaining := n
		for b := uint64(0); b < nb; b++ {
			key := br.U64()
			sz := br.U64()
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("lsh: table %d bucket: %w", t, err)
			}
			if sz > uint64(remaining) {
				return nil, fmt.Errorf("lsh: bucket size %d exceeds %d unassigned points", sz, remaining)
			}
			ids := make([]int, sz)
			for i := range ids {
				id := br.U32()
				if br.Err() == nil && int(id) >= n {
					return nil, fmt.Errorf("lsh: id %d outside [0,%d)", id, n)
				}
				ids[i] = int(id)
			}
			if err := br.Err(); err != nil {
				return nil, fmt.Errorf("lsh: table %d bucket ids: %w", t, err)
			}
			tb.buckets[key] = ids
			remaining -= int(sz)
		}
		if remaining != 0 {
			return nil, fmt.Errorf("lsh: table %d leaves %d points unhashed", t, remaining)
		}
		idx.tables[t] = tb
	}
	if err := br.Verify(); err != nil {
		return nil, fmt.Errorf("lsh: %w", err)
	}
	return idx, nil
}
