package lsh

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"knnshapley/internal/kheap"
	"knnshapley/internal/vec"
)

// Params configures an Index.
type Params struct {
	// M is the number of hash functions concatenated per table signature.
	M int
	// L is the number of hash tables.
	L int
	// R is the bucket width of each hash function, in absolute distance
	// units (multiply a relative width by D_mean when tuning).
	R float64
	// Seed drives the Gaussian projections and offsets.
	Seed uint64
}

func (p Params) validate() error {
	if p.M <= 0 || p.L <= 0 || p.R <= 0 {
		return fmt.Errorf("lsh: invalid params %+v", p)
	}
	return nil
}

// table is one hash table: M Gaussian projections with offsets and the
// bucket map from signature to training indices.
type table struct {
	proj    [][]float64 // M x dim
	offset  []float64   // M
	buckets map[uint64][]int
}

// Index is a multi-table p-stable LSH index over a fixed training set.
// Queries return candidates ranked by exact distance, so the index trades
// scan cost (only colliding points are examined) against recall.
// Queries are safe for concurrent use.
type Index struct {
	params Params
	data   [][]float64
	tables []table

	// scratch pools per-goroutine query state (stamped dedup array + hash
	// signature buffer) so concurrent queries neither race nor allocate.
	scratch sync.Pool
}

// queryScratch is the reusable per-query state.
type queryScratch struct {
	visited []uint32
	stamp   uint32
	sig     []int32
}

// Build hashes every row of data into L tables. Cost is O(N·L·M·dim).
func Build(data [][]float64, params Params) (*Index, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty dataset")
	}
	dim := len(data[0])
	rng := rand.New(rand.NewPCG(params.Seed, 0x853c49e6748fea9b))
	idx := &Index{
		params: params,
		data:   data,
		tables: make([]table, params.L),
	}
	n := len(data)
	m := params.M
	idx.scratch.New = func() any {
		return &queryScratch{visited: make([]uint32, n), sig: make([]int32, m)}
	}
	sig := make([]int32, params.M)
	for t := range idx.tables {
		tb := table{
			proj:    make([][]float64, params.M),
			offset:  make([]float64, params.M),
			buckets: make(map[uint64][]int),
		}
		for j := 0; j < params.M; j++ {
			w := make([]float64, dim)
			for d := range w {
				w[d] = rng.NormFloat64()
			}
			tb.proj[j] = w
			tb.offset[j] = rng.Float64() * params.R
		}
		for i, x := range data {
			key := tb.signature(x, params.R, sig)
			tb.buckets[key] = append(tb.buckets[key], i)
		}
		idx.tables[t] = tb
	}
	return idx, nil
}

// signature computes the M concatenated hash values of x and folds them into
// a 64-bit bucket key (FNV-1a over the int32 hashes). sig is scratch space.
func (tb *table) signature(x []float64, r float64, sig []int32) uint64 {
	for j, w := range tb.proj {
		v := (vec.Dot(w, x) + tb.offset[j]) / r
		sig[j] = int32(floorInt(v))
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, s := range sig {
		u := uint32(s)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64((u >> uint(shift)) & 0xff)
			h *= prime64
		}
	}
	return h
}

func floorInt(v float64) int64 {
	i := int64(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

// Params returns the index configuration.
func (idx *Index) Params() Params { return idx.params }

// N returns the number of indexed points.
func (idx *Index) N() int { return len(idx.data) }

// Tables returns the number of hash tables.
func (idx *Index) Tables() int { return len(idx.tables) }

// Result is the outcome of a Query.
type Result struct {
	// IDs are the candidate indices closest to the query, ordered by
	// ascending (exact distance, index); at most k entries, fewer when the
	// tables yield fewer distinct candidates.
	IDs []int
	// Dists are the exact distances matching IDs.
	Dists []float64
	// Candidates is the number of distinct points examined (the "returned
	// points" axis of Figure 9c).
	Candidates int
}

// Query returns the (approximate) k nearest neighbors of q: the union of all
// colliding bucket entries, deduplicated, ranked by exact l2 distance.
func (idx *Index) Query(q []float64, k int) Result {
	return idx.QueryTables(q, k, len(idx.tables))
}

// QueryTables is Query restricted to the first l tables — the knob behind
// the "number of hash tables" sweep of Figure 9b.
func (idx *Index) QueryTables(q []float64, k, l int) Result {
	if l > len(idx.tables) {
		l = len(idx.tables)
	}
	if k <= 0 || l <= 0 {
		return Result{}
	}
	sc := idx.scratch.Get().(*queryScratch)
	defer idx.scratch.Put(sc)
	sc.stamp++
	if sc.stamp == 0 { // wrapped: clear stamps
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.stamp = 1
	}
	h := kheap.New(k)
	candidates := 0
	for t := 0; t < l; t++ {
		tb := &idx.tables[t]
		key := tb.signature(q, idx.params.R, sc.sig)
		for _, i := range tb.buckets[key] {
			if sc.visited[i] == sc.stamp {
				continue
			}
			sc.visited[i] = sc.stamp
			candidates++
			h.Push(i, vec.L2Dist(idx.data[i], q))
		}
	}
	items := h.Sorted()
	res := Result{
		IDs:        make([]int, len(items)),
		Dists:      make([]float64, len(items)),
		Candidates: candidates,
	}
	for i, it := range items {
		res.IDs[i] = it.ID
		res.Dists[i] = it.Key
	}
	return res
}

// Recall returns the fraction of the true k nearest neighbors of q that
// appear among got — the retrieval-quality axis of Figure 9d.
func Recall(truth, got []int) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[int]bool, len(got))
	for _, i := range got {
		in[i] = true
	}
	hit := 0
	for _, i := range truth {
		if in[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
