// Package lsh implements the locality-sensitive-hashing substrate of
// Section 3.2: the p-stable (Gaussian, p=2) hash family
// h(x) = ⌊(wᵀx + b)/r⌋ of [DIIM04], a multi-table index with candidate
// retrieval, the closed-form collision probability f_h, relative-contrast
// estimation (C_K = D_mean/D_K of Theorem 3), and the parameter selection
// recipe of Section 6.1 (m = α·logN / log(1/f_h(D_mean)), table count from
// the N^{g(C_K)}·log(K/δ) bound).
package lsh

import (
	"math"
)

// CollisionProb returns f_h(c; r): the probability that two points at l2
// distance c share a hash value under h(x) = ⌊(wᵀx+b)/r⌋ with w ~ N(0, I)
// and b ~ U[0, r]. The closed form from [DIIM04] is
//
//	f_h(c) = 1 − 2Φ(−r/c) − (2c/(√(2π)·r))·(1 − exp(−r²/(2c²)))
//
// where Φ is the standard normal CDF. f_h is monotonically decreasing in c,
// with f_h(0+) = 1 and f_h(∞) = 0.
func CollisionProb(c, r float64) float64 {
	if c < 0 || r <= 0 {
		panic("lsh: CollisionProb needs c >= 0, r > 0")
	}
	if c == 0 {
		return 1
	}
	t := r / c
	p := 1 - 2*stdNormalCDF(-t) - 2/(math.Sqrt(2*math.Pi)*t)*(1-math.Exp(-t*t/2))
	// Clamp tiny negative values from cancellation at large c.
	if p < 0 {
		return 0
	}
	return p
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// GExponent returns g(C) = log f_h(1/C) / log f_h(1) of Theorem 3, assuming
// distances normalized so that D_mean = 1 (so a random point sits at distance
// 1 and the K-th neighbor at 1/C). The LSH index answers K-NN queries in
// ~N^{g(C)} time; g(C) < 1 exactly when C > 1.
func GExponent(contrast, r float64) float64 {
	if contrast <= 0 {
		panic("lsh: GExponent needs positive contrast")
	}
	pnn := CollisionProb(1/contrast, r)
	prand := CollisionProb(1, r)
	if prand <= 0 || prand >= 1 || pnn <= 0 {
		return math.Inf(1) // degenerate width: no discrimination possible
	}
	if pnn >= 1 {
		return 0
	}
	return math.Log(pnn) / math.Log(prand)
}

// OptimalR minimizes g(C, r) over a log-spaced grid of bucket widths,
// mimicking the grid search of Section 6.1 ("we performed grid search to
// find the optimal value of r"). It returns the best width (in units of
// D_mean) and the attained exponent.
func OptimalR(contrast float64) (r, g float64) {
	bestR, bestG := 1.0, math.Inf(1)
	for x := -3.0; x <= 3.0; x += 0.05 {
		cand := math.Exp2(x)
		if gg := GExponent(contrast, cand); gg < bestG {
			bestR, bestG = cand, gg
		}
	}
	return bestR, bestG
}

// NumHashBits returns m = max(1, round(alpha·ln N / ln(1/f_h(1)))) hash
// functions per table, the [GIM+99] recipe that keeps the expected number of
// random collisions per bucket at N^(1-alpha)-ish. r is in units of D_mean.
func NumHashBits(n int, r, alpha float64) int {
	prand := CollisionProb(1, r)
	if prand <= 0 || prand >= 1 {
		return 1
	}
	m := int(math.Round(alpha * math.Log(float64(n)) / math.Log(1/prand)))
	if m < 1 {
		m = 1
	}
	return m
}

// NumTables returns l = ceil(N^g · log(K/δ)) hash tables, the Theorem 3
// budget that retrieves all K nearest neighbors with probability 1−δ.
func NumTables(n int, g float64, k int, delta float64) int {
	if delta <= 0 || delta >= 1 {
		panic("lsh: delta outside (0,1)")
	}
	if g < 0 {
		g = 0
	}
	if g > 1 {
		g = 1
	}
	l := math.Ceil(math.Pow(float64(n), g) * math.Log(float64(k)/delta))
	if l < 1 {
		return 1
	}
	if l > 1<<20 {
		return 1 << 20
	}
	return int(l)
}
