package lsh

import (
	"math"
	"math/rand/v2"
	"testing"

	"knnshapley/internal/dataset"
	"knnshapley/internal/knn"
	"knnshapley/internal/vec"
)

func TestCollisionProbLimits(t *testing.T) {
	if got := CollisionProb(0, 1); got != 1 {
		t.Fatalf("f(0) = %v want 1", got)
	}
	if got := CollisionProb(1e9, 1); got > 1e-6 {
		t.Fatalf("f(inf) = %v want ~0", got)
	}
	// Probability bounds.
	for c := 0.01; c < 20; c *= 1.5 {
		p := CollisionProb(c, 2)
		if p < 0 || p > 1 {
			t.Fatalf("f(%v) = %v outside [0,1]", c, p)
		}
	}
}

func TestCollisionProbMonotoneDecreasing(t *testing.T) {
	prev := 1.1
	for c := 0.05; c < 30; c *= 1.2 {
		p := CollisionProb(c, 1.5)
		if p > prev+1e-12 {
			t.Fatalf("f not decreasing at c=%v: %v > %v", c, p, prev)
		}
		prev = p
	}
}

func TestCollisionProbIncreasingInR(t *testing.T) {
	// Wider buckets collide more.
	prev := 0.0
	for r := 0.1; r < 10; r *= 1.5 {
		p := CollisionProb(1, r)
		if p < prev-1e-12 {
			t.Fatalf("f not increasing in r at %v", r)
		}
		prev = p
	}
}

func TestCollisionProbMatchesMonteCarlo(t *testing.T) {
	// Empirical collision frequency of the actual hash function must match
	// the closed form.
	rng := rand.New(rand.NewPCG(3, 3))
	dim := 8
	for _, c := range []float64{0.5, 1, 2} {
		r := 1.5
		want := CollisionProb(c, r)
		hits, trials := 0, 20000
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := 0; i < trials; i++ {
			// Two points at distance exactly c.
			for d := range a {
				a[d] = rng.NormFloat64()
				b[d] = a[d]
			}
			dir := rng.IntN(dim)
			b[dir] += c
			// One random hash function.
			var pa, pb float64
			for d := range a {
				w := rng.NormFloat64()
				pa += w * a[d]
				pb += w * b[d]
			}
			off := rng.Float64() * r
			if floorInt((pa+off)/r) == floorInt((pb+off)/r) {
				hits++
			}
		}
		got := float64(hits) / float64(trials)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("c=%v: empirical %v vs closed form %v", c, got, want)
		}
	}
}

func TestGExponent(t *testing.T) {
	// Higher contrast -> lower exponent.
	r := 1.5
	g2 := GExponent(2, r)
	g12 := GExponent(1.2, r)
	if g2 >= g12 {
		t.Fatalf("g(2)=%v should be < g(1.2)=%v", g2, g12)
	}
	// Contrast 1 means neighbor indistinguishable from random: g = 1.
	if g1 := GExponent(1, r); math.Abs(g1-1) > 1e-9 {
		t.Fatalf("g(1) = %v want 1", g1)
	}
	// Contrast < 1 (neighbor farther than random — adversarial) gives g > 1.
	if gBad := GExponent(0.8, r); gBad <= 1 {
		t.Fatalf("g(0.8) = %v want > 1", gBad)
	}
}

func TestOptimalR(t *testing.T) {
	r, g := OptimalR(1.5)
	if r <= 0 {
		t.Fatalf("r = %v", r)
	}
	if g >= 1 {
		t.Fatalf("g = %v want < 1 for contrast 1.5", g)
	}
	// The grid minimum must beat an arbitrary width.
	if gg := GExponent(1.5, 8); g > gg {
		t.Fatalf("grid search missed: %v > %v", g, gg)
	}
}

func TestNumHashBitsAndTables(t *testing.T) {
	m := NumHashBits(100000, 1, 1)
	if m < 1 {
		t.Fatalf("m = %d", m)
	}
	if m2 := NumHashBits(100000, 1, 2); m2 <= m {
		t.Fatalf("alpha should scale m: %d vs %d", m2, m)
	}
	l := NumTables(10000, 0.5, 5, 0.1)
	if l < 1 {
		t.Fatalf("l = %d", l)
	}
	if l2 := NumTables(10000, 0.8, 5, 0.1); l2 <= l {
		t.Fatal("higher exponent should need more tables")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{M: 1, L: 1, R: 1}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Build([][]float64{{1}}, Params{M: 0, L: 1, R: 1}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := Build([][]float64{{1}}, Params{M: 1, L: 1, R: -1}); err == nil {
		t.Error("negative R accepted")
	}
}

func TestQueryFindsExactNeighborsOnEasyData(t *testing.T) {
	d := dataset.DeepLike(2000, 1)
	rng := rand.New(rand.NewPCG(7, 7))
	tuned := Tune(d.X, d.X, 10, 0.1, 1, 512, 99, rng)
	idx, err := Build(d.X, tuned.Params)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.DeepLike(30, 2)
	var recallSum float64
	for _, q := range queries.X {
		truth := knn.Neighbors(d.X, q, 10, vec.L2)
		got := idx.Query(q, 10)
		recallSum += Recall(truth, got.IDs)
	}
	if avg := recallSum / 30; avg < 0.9 {
		t.Fatalf("average recall %v < 0.9 on high-contrast data (params %+v, g=%v)",
			avg, tuned.Params, tuned.G)
	}
}

func TestQueryRecallImprovesWithTables(t *testing.T) {
	d := dataset.GistLike(1500, 3)
	rng := rand.New(rand.NewPCG(17, 17))
	tuned := Tune(d.X, d.X, 5, 0.1, 1, 256, 5, rng)
	idx, err := Build(d.X, tuned.Params)
	if err != nil {
		t.Fatal(err)
	}
	queries := dataset.GistLike(20, 4)
	recallAt := func(l int) float64 {
		var s float64
		for _, q := range queries.X {
			truth := knn.Neighbors(d.X, q, 5, vec.L2)
			got := idx.QueryTables(q, 5, l)
			s += Recall(truth, got.IDs)
		}
		return s / float64(len(queries.X))
	}
	few := recallAt(1)
	all := recallAt(idx.Tables())
	if all < few-1e-9 {
		t.Fatalf("recall decreased with more tables: %v -> %v", few, all)
	}
	if all < 0.75 {
		t.Fatalf("full-table recall %v too low", all)
	}
}

func TestQueryResultsSortedAndDeduped(t *testing.T) {
	d := dataset.MNISTLike(500, 5)
	idx, err := Build(d.X, Params{M: 4, L: 8, R: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Query(d.X[0], 20)
	seen := map[int]bool{}
	for i, id := range res.IDs {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if i > 0 && res.Dists[i] < res.Dists[i-1] {
			t.Fatal("distances not sorted")
		}
	}
	if len(res.IDs) == 0 || res.IDs[0] != 0 {
		t.Fatalf("query point itself should be its own nearest neighbor: %v", res.IDs)
	}
	if res.Candidates < len(res.IDs) {
		t.Fatal("candidate count below returned count")
	}
}

func TestQueryEdgeCases(t *testing.T) {
	d := dataset.MNISTLike(50, 6)
	idx, _ := Build(d.X, Params{M: 2, L: 2, R: 1, Seed: 1})
	if res := idx.Query(d.X[0], 0); len(res.IDs) != 0 {
		t.Fatal("k=0 should return nothing")
	}
	if res := idx.QueryTables(d.X[0], 5, 0); len(res.IDs) != 0 {
		t.Fatal("l=0 should return nothing")
	}
	// l beyond table count is clamped.
	res := idx.QueryTables(d.X[0], 5, 100)
	if res.Candidates == 0 {
		t.Fatal("clamped l returned nothing")
	}
}

func TestRecall(t *testing.T) {
	if Recall(nil, nil) != 1 {
		t.Fatal("empty truth should be recall 1")
	}
	if got := Recall([]int{1, 2, 3, 4}, []int{2, 4, 9}); got != 0.5 {
		t.Fatalf("Recall = %v want 0.5", got)
	}
}

func TestEstimateContrastOrdering(t *testing.T) {
	// Figure 9a ordering: deep > gist > dog-fish at K* = 100.
	rng := rand.New(rand.NewPCG(23, 29))
	deep := dataset.DeepLike(1500, 1)
	gist := dataset.GistLike(1500, 1)
	fish := dataset.DogFishLike(1500, 1)
	cDeep := EstimateContrast(deep.X, deep.X, 100, 20, 100, rng)
	cGist := EstimateContrast(gist.X, gist.X, 100, 20, 100, rng)
	cFish := EstimateContrast(fish.X, fish.X, 100, 20, 100, rng)
	if !(cDeep.CK > cGist.CK && cGist.CK > cFish.CK) {
		t.Fatalf("contrast ordering violated: deep=%v gist=%v dogfish=%v",
			cDeep.CK, cGist.CK, cFish.CK)
	}
	if cFish.CK <= 1 {
		t.Fatalf("dogfish contrast %v should still exceed 1", cFish.CK)
	}
}

func TestTuneProducesValidParams(t *testing.T) {
	d := dataset.GistLike(800, 9)
	rng := rand.New(rand.NewPCG(31, 31))
	tuned := Tune(d.X, d.X, 8, 0.1, 1, 128, 5, rng)
	if err := tuned.Params.validate(); err != nil {
		t.Fatal(err)
	}
	if tuned.G <= 0 || tuned.G >= 1 {
		t.Fatalf("g = %v want in (0,1) for contrast %v", tuned.G, tuned.Contrast.CK)
	}
	if tuned.Params.L > 128 {
		t.Fatalf("table cap ignored: %d", tuned.Params.L)
	}
}

func BenchmarkQuery(b *testing.B) {
	d := dataset.MNISTLike(20000, 1)
	rng := rand.New(rand.NewPCG(1, 1))
	tuned := Tune(d.X, d.X, 10, 0.1, 1, 128, 1, rng)
	idx, err := Build(d.X, tuned.Params)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.MNISTLike(64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Query(q.X[i%64], 10)
	}
}
