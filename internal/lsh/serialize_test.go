package lsh

import (
	"bytes"
	"testing"

	"knnshapley/internal/dataset"
)

func TestIndexRoundTrip(t *testing.T) {
	d := dataset.GistLike(800, 3)
	idx, err := Build(d.X, Params{M: 6, L: 10, R: 1.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(bytes.NewReader(buf.Bytes()), d.X)
	if err != nil {
		t.Fatal(err)
	}
	if back.Params() != idx.Params() || back.Tables() != idx.Tables() {
		t.Fatalf("params changed: %+v vs %+v", back.Params(), idx.Params())
	}
	// Queries must return identical results.
	queries := dataset.GistLike(20, 4)
	for _, q := range queries.X {
		a := idx.Query(q, 7)
		b := back.Query(q, 7)
		if len(a.IDs) != len(b.IDs) || a.Candidates != b.Candidates {
			t.Fatalf("result shape changed: %+v vs %+v", a, b)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] || a.Dists[i] != b.Dists[i] {
				t.Fatalf("query diverged after reload: %v vs %v", a.IDs, b.IDs)
			}
		}
	}
}

func TestReadIndexValidation(t *testing.T) {
	d := dataset.GistLike(50, 5)
	idx, err := Build(d.X, Params{M: 2, L: 2, R: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadIndex(bytes.NewReader(raw[:10]), d.X); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := ReadIndex(bytes.NewReader(raw), d.X[:10]); err == nil {
		t.Error("wrong row count accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadIndex(bytes.NewReader(bad), d.X); err == nil {
		t.Error("bad magic accepted")
	}
	short := dataset.GistLike(50, 5)
	for i := range short.X {
		short.X[i] = short.X[i][:4]
	}
	if _, err := ReadIndex(bytes.NewReader(raw), short.X); err == nil {
		t.Error("wrong dimension accepted")
	}
	// A flipped payload byte must fail the CRC even when it decodes to
	// in-range values.
	for _, off := range []int{70, len(raw) / 2, len(raw) - 8} {
		corrupt := append([]byte(nil), raw...)
		corrupt[off] ^= 0x01
		if _, err := ReadIndex(bytes.NewReader(corrupt), d.X); err == nil {
			t.Errorf("corrupt byte at %d accepted", off)
		}
	}
}

// FuzzReadIndex feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must answer queries without panicking.
func FuzzReadIndex(f *testing.F) {
	d := dataset.GistLike(40, 11)
	idx, err := Build(d.X, Params{M: 2, L: 2, R: 1, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:20])
	f.Add(raw[:len(raw)-4])
	mangled := append([]byte(nil), raw...)
	mangled[90] ^= 0xff
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, b []byte) {
		back, err := ReadIndex(bytes.NewReader(b), d.X)
		if err != nil {
			return
		}
		res := back.Query(d.X[0], 5)
		for _, id := range res.IDs {
			if id < 0 || id >= len(d.X) {
				t.Fatalf("decoded index returned id %d outside [0,%d)", id, len(d.X))
			}
		}
	})
}
