package lsh

import (
	"math/rand/v2"
	"sort"

	"knnshapley/internal/vec"
)

// Contrast summarizes the distance geometry of Theorem 3.
type Contrast struct {
	// DMean is the expected distance between a query and a random training
	// point (Eq. 21).
	DMean float64
	// DK is the expected distance between a query and its K-th nearest
	// training point (Eq. 22).
	DK float64
	// CK = DMean / DK, the K-th relative contrast. Larger values make the
	// nearest-neighbor problem easier for LSH.
	CK float64
}

// EstimateContrast estimates the K-th relative contrast of the training set
// with respect to the query distribution, sampling at most maxQueries
// queries and maxPairs random train points per query. Queries drawn from the
// training set itself are fine for tuning: the paper normalizes by D_mean of
// the same distribution.
func EstimateContrast(train [][]float64, queries [][]float64, k, maxQueries, maxPairs int, rng *rand.Rand) Contrast {
	if len(train) == 0 || len(queries) == 0 {
		panic("lsh: EstimateContrast with empty data")
	}
	if k < 1 {
		k = 1
	}
	if k > len(train) {
		k = len(train)
	}
	nq := maxQueries
	if nq > len(queries) {
		nq = len(queries)
	}
	qIdx := rng.Perm(len(queries))[:nq]
	var dMean, dK float64
	dists := make([]float64, len(train))
	for _, qi := range qIdx {
		q := queries[qi]
		var m float64
		for s := 0; s < maxPairs; s++ {
			m += vec.L2Dist(q, train[rng.IntN(len(train))])
		}
		dMean += m / float64(maxPairs)
		for i, x := range train {
			dists[i] = vec.L2Dist(x, q)
		}
		sort.Float64s(dists)
		// Queries drawn from the training set match themselves at distance
		// zero; skip that self-match so D_K measures a real neighbor.
		kth := k - 1
		if dists[0] == 0 && kth+1 < len(dists) {
			kth++
		}
		dK += dists[kth]
	}
	dMean /= float64(nq)
	dK /= float64(nq)
	c := Contrast{DMean: dMean, DK: dK}
	if dK > 0 {
		c.CK = dMean / dK
	}
	return c
}

// Tuned bundles the auto-selected LSH parameters with the quantities that
// produced them, for reporting in the experiment harness.
type Tuned struct {
	Params   Params
	Contrast Contrast
	// RRel is the chosen bucket width relative to D_mean.
	RRel float64
	// G is the complexity exponent g(C_K*) at the chosen width.
	G float64
}

// Tune selects LSH parameters for retrieving the kStar nearest neighbors of
// queries with failure probability at most delta, following Section 6.1:
// estimate the contrast, grid-search the relative width r minimizing
// g(C_K*), set m = α·logN/log(1/f_h(D_mean)) and l = N^g·log(K*/δ).
// maxTables caps l to keep memory bounded on low-contrast data.
func Tune(train [][]float64, queries [][]float64, kStar int, delta, alpha float64, maxTables int, seed uint64, rng *rand.Rand) Tuned {
	c := EstimateContrast(train, queries, kStar, 25, 100, rng)
	contrast := c.CK
	if contrast <= 1 {
		contrast = 1.0001 // degenerate geometry; fall back to a minimal index
	}
	rRel, g := OptimalR(contrast)
	n := len(train)
	m := NumHashBits(n, rRel, alpha)
	l := NumTables(n, g, kStar, delta)
	if maxTables > 0 && l > maxTables {
		l = maxTables
	}
	return Tuned{
		Params:   Params{M: m, L: l, R: rRel * c.DMean, Seed: seed},
		Contrast: c,
		RRel:     rRel,
		G:        g,
	}
}
