package vec

import (
	"math/rand/v2"
	"testing"
)

// The storage benchmarks pin the flat row-major win: one query scanned
// against N train rows held either as a contiguous row-major buffer or as a
// slice of independently-allocated rows, plus the blocked tile kernel that
// the streaming engine uses. Run with:
//
//	go test ./internal/vec -bench 'Scan|Block' -benchmem
var benchShapes = []struct {
	name   string
	n, dim int
}{
	{"n1000_d32", 1000, 32},
	{"n10000_d64", 10000, 64},
}

// scatteredRows allocates each row separately (the seed's [][]float64
// layout), defeating the contiguity a flat scan enjoys.
func scatteredRows(n, dim int, rng *rand.Rand) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

func BenchmarkDistanceScanSlices(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 1))
			rows := scatteredRows(shape.n, shape.dim, rng)
			q := make([]float64, shape.dim)
			out := make([]float64, shape.n)
			b.SetBytes(int64(shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Distances(SquaredL2, rows, q, out)
			}
		})
	}
}

func BenchmarkDistanceScanFlat(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 1))
			flat, _ := randomFlat(shape.n, shape.dim, rng)
			q := make([]float64, shape.dim)
			out := make([]float64, shape.n)
			b.SetBytes(int64(shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DistancesFlat(SquaredL2, flat, shape.n, shape.dim, q, out)
			}
		})
	}
}

// BenchmarkSqL2Block measures the blocked tile kernel at the engine's
// default batch size: 64 queries against the train matrix per call.
func BenchmarkSqL2Block(b *testing.B) {
	const batch = 64
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2, 2))
			trainFlat, _ := randomFlat(shape.n, shape.dim, rng)
			testFlat, _ := randomFlat(batch, shape.dim, rng)
			dst := make([]float64, batch*shape.n)
			b.SetBytes(int64(batch * shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SqL2Block(dst, testFlat, batch, trainFlat, shape.n, shape.dim)
			}
		})
	}
}
