package vec

import (
	"math/rand/v2"
	"testing"
)

// The storage benchmarks pin the flat row-major win: one query scanned
// against N train rows held either as a contiguous row-major buffer or as a
// slice of independently-allocated rows, plus the norm-precompute GEMV
// kernel that the streaming engine uses and the radix argsort. Run with:
//
//	go test ./internal/vec -bench 'Scan|NormDot|Argsort' -benchmem
var benchShapes = []struct {
	name   string
	n, dim int
}{
	{"n1000_d32", 1000, 32},
	{"n10000_d64", 10000, 64},
}

// scatteredRows allocates each row separately (the seed's [][]float64
// layout), defeating the contiguity a flat scan enjoys.
func scatteredRows(n, dim int, rng *rand.Rand) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

func BenchmarkDistanceScanSlices(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 1))
			rows := scatteredRows(shape.n, shape.dim, rng)
			q := make([]float64, shape.dim)
			out := make([]float64, shape.n)
			b.SetBytes(int64(shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Distances(SquaredL2, rows, q, out)
			}
		})
	}
}

func BenchmarkDistanceScanFlat(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, 1))
			flat, _ := randomFlat(shape.n, shape.dim, rng)
			q := make([]float64, shape.dim)
			out := make([]float64, shape.n)
			b.SetBytes(int64(shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DistancesFlat(SquaredL2, flat, shape.n, shape.dim, q, out)
			}
		})
	}
}

// BenchmarkSqL2NormDotBatch measures the GEMV-shaped norm-precompute
// kernel at the engine's default batch size: 64 queries against the train
// matrix per call, float64 and float32 storage.
func BenchmarkSqL2NormDotBatch(b *testing.B) {
	const batch = 64
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2, 2))
			trainFlat, _ := randomFlat(shape.n, shape.dim, rng)
			testFlat, _ := randomFlat(batch, shape.dim, rng)
			norms := SqNorms(nil, trainFlat, shape.n, shape.dim)
			dst := make([]float64, batch*shape.n)
			b.SetBytes(int64(batch * shape.n * shape.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SqL2NormDotBatch(dst, trainFlat, shape.n, shape.dim, norms, testFlat, batch)
			}
		})
	}
}

func BenchmarkSqL2NormDotBatch32(b *testing.B) {
	const batch = 64
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(2, 2))
			trainFlat, _ := randomFlat(shape.n, shape.dim, rng)
			testFlat, _ := randomFlat(batch, shape.dim, rng)
			trainFlat32 := ToFloat32(nil, trainFlat)
			testFlat32 := ToFloat32(nil, testFlat)
			norms32 := SqNorms32(nil, trainFlat32, shape.n, shape.dim)
			dst := make([]float64, batch*shape.n)
			b.SetBytes(int64(batch * shape.n * shape.dim * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SqL2NormDotBatch32(dst, trainFlat32, shape.n, shape.dim, norms32, testFlat32, batch)
			}
		})
	}
}

// BenchmarkArgsortDist measures the radix argsort against the generic
// closure-key path on the same keys.
func BenchmarkArgsortDist(b *testing.B) {
	for _, shape := range benchShapes {
		b.Run(shape.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 3))
			dist := make([]float64, shape.n)
			for i := range dist {
				dist[i] = rng.Float64() * 20
			}
			idx := make([]int, shape.n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ArgsortDistInto(idx, dist)
			}
		})
	}
}
