// Package vec provides the small dense-vector kernels the rest of the
// repository is built on: distance metrics, norms, and rank/argsort helpers.
//
// Everything operates on []float64 (with opt-in float32 storage variants
// for the bandwidth-bound scans) and is allocation-free unless the
// function's contract says otherwise. The two per-test-point hot paths are
// hardware-shaped: the squared-L2 scan runs as a norm-precompute GEMV
// sweep over the flat training matrix (SqL2NormDotBatch, SSE2 kernels on
// amd64 with bit-identical portable fallbacks — see dot_kernels.go), and
// the α-ordering argsort is an LSD radix sort on the distance bit patterns
// (ArgsortDistInto) instead of a comparison sort.
package vec

import (
	"fmt"
	"math"
	"sync"
)

// Metric identifies a distance function on feature vectors.
type Metric int

const (
	// L2 is the Euclidean distance. It is the metric used throughout the
	// paper (the p-stable LSH of Section 3.2 targets l2).
	L2 Metric = iota
	// SquaredL2 is the squared Euclidean distance. It induces the same
	// neighbor ordering as L2 but skips the square root.
	SquaredL2
	// L1 is the Manhattan distance.
	L1
	// Cosine is the cosine distance 1 - <a,b>/(|a||b|).
	Cosine
)

// String returns the conventional name of the metric.
func (m Metric) String() string {
	switch m {
	case L2:
		return "l2"
	case SquaredL2:
		return "sql2"
	case L1:
		return "l1"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance returns the distance between a and b under the metric.
// It panics if the vectors have different lengths.
func (m Metric) Distance(a, b []float64) float64 {
	switch m {
	case L2:
		return math.Sqrt(SqL2(a, b))
	case SquaredL2:
		return SqL2(a, b)
	case L1:
		return ManhattanDist(a, b)
	case Cosine:
		return CosineDist(a, b)
	default:
		panic("vec: unknown metric " + m.String())
	}
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
}

// SqL2 returns the squared Euclidean distance between a and b.
func SqL2(a, b []float64) float64 {
	checkLen(a, b)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2Dist returns the Euclidean distance between a and b.
func L2Dist(a, b []float64) float64 { return math.Sqrt(SqL2(a, b)) }

// ManhattanDist returns the l1 distance between a and b.
func ManhattanDist(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// CosineDist returns 1 - cos(a, b). Zero vectors are treated as maximally
// distant (distance 1) so the function is total.
func CosineDist(a, b []float64) float64 {
	checkLen(a, b)
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/math.Sqrt(na*nb)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Scale multiplies a in place by c and returns a.
func Scale(a []float64, c float64) []float64 {
	for i := range a {
		a[i] *= c
	}
	return a
}

// AXPY computes dst += c*x in place. It panics on dimension mismatch.
func AXPY(dst []float64, c float64, x []float64) {
	checkLen(dst, x)
	for i := range dst {
		dst[i] += c * x[i]
	}
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Distances fills out[i] with metric(points[i], q) and returns out.
// If out is nil or too short a new slice is allocated.
func Distances(m Metric, points [][]float64, q []float64, out []float64) []float64 {
	if cap(out) < len(points) {
		out = make([]float64, len(points))
	}
	out = out[:len(points)]
	for i, p := range points {
		out[i] = m.Distance(p, q)
	}
	return out
}

// DistancesFlat fills out[i] with metric(row i of flat, q) where flat is a
// row-major n×dim matrix. If out is nil or too short a new slice is
// allocated. Operating on one contiguous buffer avoids the per-row pointer
// chase of the [][]float64 layout.
func DistancesFlat(m Metric, flat []float64, n, dim int, q []float64, out []float64) []float64 {
	if len(flat) != n*dim {
		panic(fmt.Sprintf("vec: flat buffer has %d values, want %d×%d", len(flat), n, dim))
	}
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := 0; i < n; i++ {
		out[i] = m.Distance(flat[i*dim:(i+1)*dim], q)
	}
	return out
}

// Argsort returns the permutation that sorts dist ascending. Ties are broken
// by index so the result is deterministic. It is ArgsortDistInto with a
// fresh index buffer.
func Argsort(dist []float64) []int {
	return ArgsortDistInto(nil, dist)
}

// ArgsortBy returns indices 0..n-1 ordered ascending by key(i), ties broken
// by index.
func ArgsortBy(n int, key func(int) float64) []int {
	return ArgsortByInto(nil, n, key)
}

// ArgsortByInto is ArgsortBy writing into idx (reallocated only when too
// short), so hot loops can reuse one index buffer across calls. The ordering
// — ascending by key, ties broken by index — is identical to ArgsortBy's.
// The keys are materialized once and handed to the radix argsort, so the
// closure is invoked exactly n times instead of O(n log n) times from a
// comparison sort.
func ArgsortByInto(idx []int, n int, key func(int) float64) []int {
	buf := keyBufPool.Get().(*keyBuf)
	if cap(buf.keys) < n {
		buf.keys = make([]float64, n)
	}
	keys := buf.keys[:n]
	for i := range keys {
		keys[i] = key(i)
	}
	idx = ArgsortDistInto(idx, keys)
	keyBufPool.Put(buf)
	return idx
}

type keyBuf struct{ keys []float64 }

var keyBufPool = sync.Pool{New: func() any { return new(keyBuf) }}

// Mean returns the arithmetic mean of a; it returns 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// Sum returns the sum of a.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// MinMax returns the minimum and maximum of a. It panics on an empty slice.
func MinMax(a []float64) (lo, hi float64) {
	if len(a) == 0 {
		panic("vec: MinMax of empty slice")
	}
	lo, hi = a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
