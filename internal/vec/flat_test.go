package vec

import (
	"math/rand/v2"
	"testing"
)

func randomFlat(n, dim int, rng *rand.Rand) ([]float64, [][]float64) {
	flat := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim]
	}
	return flat, rows
}

// The blocked kernel must agree bitwise with the row-at-a-time scan: it
// performs the same subtract-square-accumulate sequence per pair.
func TestSqL2BlockMatchesRowScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 1))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 64, 9}, {5, 130, 17}, {2, 200, 3}} {
		nTest, nTrain, dim := shape[0], shape[1], shape[2]
		trainFlat, trainRows := randomFlat(nTrain, dim, rng)
		testFlat, testRows := randomFlat(nTest, dim, rng)
		dst := SqL2Block(nil, testFlat, nTest, trainFlat, nTrain, dim)
		for i := 0; i < nTest; i++ {
			for j := 0; j < nTrain; j++ {
				want := SqL2(trainRows[j], testRows[i])
				if dst[i*nTrain+j] != want {
					t.Fatalf("shape %v: dst[%d,%d] = %v, want %v", shape, i, j, dst[i*nTrain+j], want)
				}
			}
		}
	}
}

func TestSqL2BlockReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewPCG(92, 2))
	trainFlat, _ := randomFlat(10, 4, rng)
	testFlat, _ := randomFlat(3, 4, rng)
	buf := make([]float64, 100)
	dst := SqL2Block(buf, testFlat, 3, trainFlat, 10, 4)
	if &dst[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
	if len(dst) != 30 {
		t.Fatalf("len %d, want 30", len(dst))
	}
}

func TestDistancesFlatMatchesDistances(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 3))
	flat, rows := randomFlat(12, 6, rng)
	q := make([]float64, 6)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for _, m := range []Metric{L2, SquaredL2, L1, Cosine} {
		want := Distances(m, rows, q, nil)
		got := DistancesFlat(m, flat, 12, 6, q, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("metric %v: dist[%d] = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
}

func TestArgsortByIntoMatchesArgsortBy(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 4))
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = float64(rng.IntN(20)) // plenty of ties
	}
	key := func(i int) float64 { return keys[i] }
	want := ArgsortBy(len(keys), key)
	buf := make([]int, 0, len(keys))
	got := ArgsortByInto(buf, len(keys), key)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Reuse: a second call must not reallocate.
	again := ArgsortByInto(got, len(keys), key)
	if &again[0] != &got[0] {
		t.Fatal("buffer not reused")
	}
}
