package vec

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randomFlat(n, dim int, rng *rand.Rand) ([]float64, [][]float64) {
	flat := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim]
	}
	return flat, rows
}

// The norm-precompute batch kernel must agree with the definitional
// row-at-a-time scan to within the rounding of the reassociated identity
// ‖a‖²+‖q‖²−2a·q, and must never go negative.
func TestSqL2NormDotBatchMatchesRowScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 1))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 64, 9}, {5, 130, 17}, {2, 200, 3}, {9, 65, 8}} {
		nTest, nTrain, dim := shape[0], shape[1], shape[2]
		trainFlat, trainRows := randomFlat(nTrain, dim, rng)
		testFlat, testRows := randomFlat(nTest, dim, rng)
		norms := SqNorms(nil, trainFlat, nTrain, dim)
		dst := SqL2NormDotBatch(nil, trainFlat, nTrain, dim, norms, testFlat, nTest)
		for i := 0; i < nTest; i++ {
			for j := 0; j < nTrain; j++ {
				want := SqL2(trainRows[j], testRows[i])
				got := dst[i*nTrain+j]
				scale := want
				if scale < 1 {
					scale = 1
				}
				if got < 0 || math.Abs(got-want) > 1e-9*scale {
					t.Fatalf("shape %v: dst[%d,%d] = %v, want %v", shape, i, j, got, want)
				}
			}
		}
	}
}

// A query's distances must not depend on how queries were grouped into
// batches: every prefix/suffix split of the query block reproduces the
// full batch bit for bit. This is what keeps valuations invariant under
// WithBatchSize.
func TestSqL2NormDotBatchGroupingInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(92, 2))
	const nTrain, dim, nTest = 37, 19, 11
	trainFlat, _ := randomFlat(nTrain, dim, rng)
	testFlat, _ := randomFlat(nTest, dim, rng)
	norms := SqNorms(nil, trainFlat, nTrain, dim)
	norms32 := SqNorms32(nil, ToFloat32(nil, trainFlat), nTrain, dim)
	trainFlat32 := ToFloat32(nil, trainFlat)
	testFlat32 := ToFloat32(nil, testFlat)
	want := SqL2NormDotBatch(nil, trainFlat, nTrain, dim, norms, testFlat, nTest)
	want32 := SqL2NormDotBatch32(nil, trainFlat32, nTrain, dim, norms32, testFlat32, nTest)
	for split := 1; split < nTest; split++ {
		a := SqL2NormDotBatch(nil, trainFlat, nTrain, dim, norms, testFlat[:split*dim], split)
		b := SqL2NormDotBatch(nil, trainFlat, nTrain, dim, norms, testFlat[split*dim:], nTest-split)
		got := append(a, b...)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split %d: dst[%d] = %v, want %v (batch grouping changed bits)", split, i, got[i], want[i])
			}
		}
		a32 := SqL2NormDotBatch32(nil, trainFlat32, nTrain, dim, norms32, testFlat32[:split*dim], split)
		b32 := SqL2NormDotBatch32(nil, trainFlat32, nTrain, dim, norms32, testFlat32[split*dim:], nTest-split)
		got32 := append(a32, b32...)
		for i := range want32 {
			if got32[i] != want32[i] {
				t.Fatalf("split %d: float32 dst[%d] = %v, want %v", split, i, got32[i], want32[i])
			}
		}
	}
}

// The float32 kernel must track the float64 scan within single-precision
// rounding: relative error of order dim·2⁻²⁴ on well-scaled data.
func TestSqL2NormDotBatch32Tolerance(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 5))
	const nTrain, dim, nTest = 64, 48, 8
	trainFlat, _ := randomFlat(nTrain, dim, rng)
	testFlat, _ := randomFlat(nTest, dim, rng)
	norms := SqNorms(nil, trainFlat, nTrain, dim)
	want := SqL2NormDotBatch(nil, trainFlat, nTrain, dim, norms, testFlat, nTest)
	trainFlat32 := ToFloat32(nil, trainFlat)
	testFlat32 := ToFloat32(nil, testFlat)
	norms32 := SqNorms32(nil, trainFlat32, nTrain, dim)
	got := SqL2NormDotBatch32(nil, trainFlat32, nTrain, dim, norms32, testFlat32, nTest)
	for i := range want {
		scale := want[i]
		if scale < 1 {
			scale = 1
		}
		if math.Abs(got[i]-want[i]) > 1e-4*scale {
			t.Fatalf("dst[%d] = %v, want %v (float32 drift too large)", i, got[i], want[i])
		}
	}
}

// The assembly kernels (on amd64) and the portable fallbacks must both
// realize the documented summation tree exactly — this is the contract
// that makes distances identical across platforms and query groupings.
func TestDotKernelsMatchGoTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 6))
	for n := 0; n <= 70; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if got, want := dot1x64(a, b), dotTreeGo64(a, b); got != want {
			t.Fatalf("dot1x64 n=%d: %v != %v", n, got, want)
		}
		a32 := ToFloat32(nil, a)
		b32 := ToFloat32(nil, b)
		if got, want := dot1x32(a32, b32), dotTreeGo32(a32, b32); got != want {
			t.Fatalf("dot1x32 n=%d: %v != %v", n, got, want)
		}
		var out [4]float64
		dot4x64(a, b, b, b, b, &out)
		if want := dotTreeGo64(a, b); out[0] != want || out[1] != want || out[2] != want || out[3] != want {
			t.Fatalf("dot4x64 n=%d: %v, want all %v", n, out, want)
		}
		var out32 [4]float32
		dot4x32(a32, b32, b32, b32, b32, &out32)
		if want := dotTreeGo32(a32, b32); out32[0] != want || out32[1] != want || out32[2] != want || out32[3] != want {
			t.Fatalf("dot4x32 n=%d: %v, want all %v", n, out32, want)
		}
	}
}

// Distinct queries through dot4 must land in their own slots.
func TestDot4DistinctQueries(t *testing.T) {
	rng := rand.New(rand.NewPCG(95, 7))
	const n = 23
	row := make([]float64, n)
	qs := make([][]float64, 4)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	for j := range qs {
		qs[j] = make([]float64, n)
		for i := range qs[j] {
			qs[j][i] = rng.NormFloat64()
		}
	}
	var out [4]float64
	dot4x64(row, qs[0], qs[1], qs[2], qs[3], &out)
	for j := range qs {
		if want := dotTreeGo64(row, qs[j]); out[j] != want {
			t.Fatalf("dot4x64 slot %d: %v, want %v", j, out[j], want)
		}
	}
}

func TestDistancesFlatMatchesDistances(t *testing.T) {
	rng := rand.New(rand.NewPCG(93, 3))
	flat, rows := randomFlat(12, 6, rng)
	q := make([]float64, 6)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for _, m := range []Metric{L2, SquaredL2, L1, Cosine} {
		want := Distances(m, rows, q, nil)
		got := DistancesFlat(m, flat, 12, 6, q, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("metric %v: dist[%d] = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
}

func TestArgsortByIntoMatchesArgsortBy(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 4))
	keys := make([]float64, 200)
	for i := range keys {
		keys[i] = float64(rng.IntN(20)) // plenty of ties
	}
	key := func(i int) float64 { return keys[i] }
	want := ArgsortBy(len(keys), key)
	buf := make([]int, 0, len(keys))
	got := ArgsortByInto(buf, len(keys), key)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("idx[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Reuse: a second call must not reallocate.
	again := ArgsortByInto(got, len(keys), key)
	if &again[0] != &got[0] {
		t.Fatal("buffer not reused")
	}
}
