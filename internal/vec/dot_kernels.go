package vec

import "fmt"

// This file holds the norm-precompute distance kernels: instead of the
// difference-and-square row scan ‖a−q‖² = Σ(aᵢ−qᵢ)², the scan is
// restructured as ‖a‖² + ‖q‖² − 2·a·q with the per-row norms ‖a‖² cached
// once per session. The per-row work drops from subtract+multiply+add to a
// pure dot product — one GEMV-shaped sweep over the training matrix per
// query group — and the dot is an SSE2 kernel on amd64 (dot_amd64.s) with
// a bit-identical pure-Go tree elsewhere (dotTreeGo64/dotTreeGo32 below).
//
// Summation-order contract: every dot product — single-query, grouped by
// four, assembly or fallback, float64 or float32 — accumulates with the
// same tree, so a distance depends only on (row, query), never on how
// queries were batched. The engine's bit-identity guarantee across
// Workers/BatchSize settings rests on this.

// dotTreeGo64 is the pure-Go mirror of the SSE2 float64 summation tree:
// two lanes, lane 0 accumulating even offsets (and the scalar tail),
// lane 1 odd offsets, combined as lane0 + lane1.
func dotTreeGo64(a, b []float64) float64 {
	var l0, l1 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		l0 += a[i] * b[i]
		l1 += a[i+1] * b[i+1]
		l0 += a[i+2] * b[i+2]
		l1 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		l0 += a[i] * b[i]
	}
	return l0 + l1
}

// dotTreeGo32 is the pure-Go mirror of the SSE2 float32 summation tree:
// eight lanes by offset mod 8 (two 4-wide registers per query, so the two
// adds per chunk are independent and the critical path is one ADDPS per
// chunk), tail into lane 0, combined as
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
func dotTreeGo32(a, b []float32) float32 {
	var l0, l1, l2, l3, l4, l5, l6, l7 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		l0 += a[i] * b[i]
		l1 += a[i+1] * b[i+1]
		l2 += a[i+2] * b[i+2]
		l3 += a[i+3] * b[i+3]
		l4 += a[i+4] * b[i+4]
		l5 += a[i+5] * b[i+5]
		l6 += a[i+6] * b[i+6]
		l7 += a[i+7] * b[i+7]
	}
	for ; i < len(a); i++ {
		l0 += a[i] * b[i]
	}
	return ((l0 + l4) + (l2 + l6)) + ((l1 + l5) + (l3 + l7))
}

// SqNorm returns ‖a‖² accumulated with the kernel summation tree — the
// per-row precompute of the norm-dot distance identity. Sessions call it
// once per training row; queries once per scan.
func SqNorm(a []float64) float64 { return dot1x64(a, a) }

// SqNorm32 is SqNorm for float32 storage.
func SqNorm32(a []float32) float32 { return dot1x32(a, a) }

// SqNorms fills dst[i] = ‖row i‖² for the row-major n×dim matrix flat.
// If dst is nil or too short a new slice is allocated.
func SqNorms(dst, flat []float64, n, dim int) []float64 {
	checkFlat(len(flat), n, dim)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = SqNorm(flat[i*dim : (i+1)*dim])
	}
	return dst
}

// SqNorms32 is SqNorms for float32 storage.
func SqNorms32(dst []float32, flat []float32, n, dim int) []float32 {
	checkFlat(len(flat), n, dim)
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = SqNorm32(flat[i*dim : (i+1)*dim])
	}
	return dst
}

// ToFloat32 narrows src into dst (reallocated when too short) and returns
// it — the conversion that builds the float32 mirror of a training set.
func ToFloat32(dst []float32, src []float64) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// SqL2NormDot returns ‖a−q‖² via the norm-dot identity given the
// precomputed squared norms of both vectors. Rounding can push the
// identity a hair negative where the true distance is ~0; the result is
// clamped so distances stay non-negative (and sqrt-safe).
func SqL2NormDot(a, q []float64, aNorm, qNorm float64) float64 {
	d := aNorm + qNorm - 2*dot1x64(a, q)
	if d < 0 {
		d = 0
	}
	return d
}

// SqL2NormDotBatch fills dst[qi*n+r] = ‖row r − query qi‖² for the
// row-major n×dim training matrix flat and the row-major nq×dim query
// block qflat, using the precomputed training norms. The training matrix
// streams through memory once per four queries (the GEMV grouping), which
// is what makes the scan faster than per-query passes; per-query sums use
// the single-query tree exactly, so results do not depend on nq. dst must
// have nq*n capacity; the re-sliced buffer is returned.
func SqL2NormDotBatch(dst []float64, flat []float64, n, dim int, norms []float64, qflat []float64, nq int) []float64 {
	checkFlat(len(flat), n, dim)
	checkFlat(len(qflat), nq, dim)
	if len(norms) != n {
		panic(fmt.Sprintf("vec: %d norms for %d rows", len(norms), n))
	}
	if cap(dst) < nq*n {
		dst = make([]float64, nq*n)
	}
	dst = dst[:nq*n]
	var qn [4]float64
	var dots [4]float64
	qi := 0
	for ; qi+4 <= nq; qi += 4 {
		q0 := qflat[qi*dim : (qi+1)*dim]
		q1 := qflat[(qi+1)*dim : (qi+2)*dim]
		q2 := qflat[(qi+2)*dim : (qi+3)*dim]
		q3 := qflat[(qi+3)*dim : (qi+4)*dim]
		qn[0], qn[1], qn[2], qn[3] = SqNorm(q0), SqNorm(q1), SqNorm(q2), SqNorm(q3)
		d0 := dst[qi*n : (qi+1)*n]
		d1 := dst[(qi+1)*n : (qi+2)*n]
		d2 := dst[(qi+2)*n : (qi+3)*n]
		d3 := dst[(qi+3)*n : (qi+4)*n]
		for r := 0; r < n; r++ {
			row := flat[r*dim : (r+1)*dim]
			dot4x64(row, q0, q1, q2, q3, &dots)
			nr := norms[r]
			v0 := nr + qn[0] - 2*dots[0]
			v1 := nr + qn[1] - 2*dots[1]
			v2 := nr + qn[2] - 2*dots[2]
			v3 := nr + qn[3] - 2*dots[3]
			if v0 < 0 {
				v0 = 0
			}
			if v1 < 0 {
				v1 = 0
			}
			if v2 < 0 {
				v2 = 0
			}
			if v3 < 0 {
				v3 = 0
			}
			d0[r], d1[r], d2[r], d3[r] = v0, v1, v2, v3
		}
	}
	for ; qi < nq; qi++ {
		q := qflat[qi*dim : (qi+1)*dim]
		qNorm := SqNorm(q)
		d := dst[qi*n : (qi+1)*n]
		for r := 0; r < n; r++ {
			d[r] = SqL2NormDot(flat[r*dim:(r+1)*dim], q, norms[r], qNorm)
		}
	}
	return dst
}

// SqL2NormDotBatch32 is SqL2NormDotBatch computing in float32: the
// training matrix, its norms and the query block are float32 (half the
// memory traffic of the float64 scan), and each squared distance is
// widened to float64 on store so downstream ranking code is unchanged.
func SqL2NormDotBatch32(dst []float64, flat []float32, n, dim int, norms []float32, qflat []float32, nq int) []float64 {
	checkFlat(len(flat), n, dim)
	checkFlat(len(qflat), nq, dim)
	if len(norms) != n {
		panic(fmt.Sprintf("vec: %d norms for %d rows", len(norms), n))
	}
	if cap(dst) < nq*n {
		dst = make([]float64, nq*n)
	}
	dst = dst[:nq*n]
	var qn [4]float32
	qi := 0
	for ; qi+4 <= nq; qi += 4 {
		q0 := qflat[qi*dim : (qi+1)*dim]
		q1 := qflat[(qi+1)*dim : (qi+2)*dim]
		q2 := qflat[(qi+2)*dim : (qi+3)*dim]
		q3 := qflat[(qi+3)*dim : (qi+4)*dim]
		qn[0], qn[1], qn[2], qn[3] = SqNorm32(q0), SqNorm32(q1), SqNorm32(q2), SqNorm32(q3)
		sqL2Gemv4x32(dst[qi*n:(qi+4)*n], n, flat, dim, norms, q0, q1, q2, q3, &qn)
	}
	for ; qi < nq; qi++ {
		q := qflat[qi*dim : (qi+1)*dim]
		qNorm := SqNorm32(q)
		d := dst[qi*n : (qi+1)*n]
		for r := 0; r < n; r++ {
			v := norms[r] + qNorm - 2*dot1x32(flat[r*dim:(r+1)*dim], q)
			if v < 0 {
				v = 0
			}
			d[r] = float64(v)
		}
	}
	return dst
}

// sqL2Gemv4x32Go is the portable body of one four-query float32 GEMV
// group: dst4 is the 4n-length window holding the four queries' distance
// rows back to back. On amd64 sqL2Gemv4x32 (dot_amd64.go) replaces the
// whole loop with a single assembly sweep — same tree, same distance
// expression, same clamp, so the outputs are bit-identical
// (TestGemv4x32MatchesGo pins this).
func sqL2Gemv4x32Go(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32) {
	d0, d1, d2, d3 := dst4[0:n], dst4[n:2*n], dst4[2*n:3*n], dst4[3*n:4*n]
	var dots [4]float32
	for r := 0; r < n; r++ {
		row := flat[r*dim : (r+1)*dim]
		dot4x32(row, q0, q1, q2, q3, &dots)
		nr := norms[r]
		v0 := nr + qn[0] - 2*dots[0]
		v1 := nr + qn[1] - 2*dots[1]
		v2 := nr + qn[2] - 2*dots[2]
		v3 := nr + qn[3] - 2*dots[3]
		if v0 < 0 {
			v0 = 0
		}
		if v1 < 0 {
			v1 = 0
		}
		if v2 < 0 {
			v2 = 0
		}
		if v3 < 0 {
			v3 = 0
		}
		d0[r], d1[r], d2[r], d3[r] = float64(v0), float64(v1), float64(v2), float64(v3)
	}
}

// checkFlat panics unless a flat buffer of length got holds an n×dim
// row-major matrix.
func checkFlat(got, n, dim int) {
	if got != n*dim {
		panic(fmt.Sprintf("vec: flat buffer has %d values, want %d×%d", got, n, dim))
	}
}
