//go:build amd64

package vec

import (
	"math"
	"math/rand/v2"
	"testing"
)

// The AVX and SSE2 float32 bodies implement the same 8-lane summation
// tree and must agree bit for bit on every length (loop, tail, and
// empty cases) — otherwise results would depend on which machine ran
// the valuation.
func TestDot32AVXMatchesSSE(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewPCG(96, 8))
	for n := 0; n <= 70; n++ {
		a := make([]float32, n)
		qs := make([][]float32, 4)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for j := range qs {
			qs[j] = make([]float32, n)
			for i := range qs[j] {
				qs[j][i] = float32(rng.NormFloat64())
			}
		}
		for j := range qs {
			if got, want := dot1x32avx(a, qs[j]), dot1x32sse(a, qs[j]); got != want {
				t.Fatalf("dot1x32 n=%d q%d: avx %v != sse %v", n, j, got, want)
			}
		}
		var outAVX, outSSE [4]float32
		dot4x32avx(a, qs[0], qs[1], qs[2], qs[3], &outAVX)
		dot4x32sse(a, qs[0], qs[1], qs[2], qs[3], &outSSE)
		if outAVX != outSSE {
			t.Fatalf("dot4x32 n=%d: avx %v != sse %v", n, outAVX, outSSE)
		}
		for j := range qs {
			if want := dotTreeGo32(a, qs[j]); outAVX[j] != want {
				t.Fatalf("dot4x32avx n=%d slot %d: %v, want tree %v", n, j, outAVX[j], want)
			}
		}
	}
}

// Raw kernel-body throughput, isolating the asm from the batch loop's
// per-row overhead (slice headers, norm arithmetic, stores).
func BenchmarkDot4x32Bodies(b *testing.B) {
	const n, dim = 10000, 64
	rng := rand.New(rand.NewPCG(97, 9))
	flat := make([]float32, n*dim)
	for i := range flat {
		flat[i] = float32(rng.NormFloat64())
	}
	q := make([][]float32, 4)
	for j := range q {
		q[j] = make([]float32, dim)
		for i := range q[j] {
			q[j][i] = float32(rng.NormFloat64())
		}
	}
	var out [4]float32
	b.Run("sse", func(b *testing.B) {
		b.SetBytes(int64(n * dim * 4))
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				dot4x32sse(flat[r*dim:(r+1)*dim], q[0], q[1], q[2], q[3], &out)
			}
		}
	})
	b.Run("avx", func(b *testing.B) {
		if !useAVX {
			b.Skip("no AVX")
		}
		b.SetBytes(int64(n * dim * 4))
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				dot4x32avx(flat[r*dim:(r+1)*dim], q[0], q[1], q[2], q[3], &out)
			}
		}
	})
}

// The assembly group sweeps must reproduce the portable group body bit
// for bit on every shape — including scalar tails (dim % 8), dims below
// one chunk, single rows, negative-identity clamps, and non-finite
// inputs (Inf rows make v = Inf - Inf = NaN, which the clamp must
// preserve, not zero).
func TestGemv4x32MatchesGo(t *testing.T) {
	rng := rand.New(rand.NewPCG(98, 10))
	kernels := []struct {
		name string
		f    func(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)
	}{{"sse", gemv4x32sse}}
	if useAVX {
		kernels = append(kernels, struct {
			name string
			f    func(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)
		}{"avx", gemv4x32avx})
	}
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {7, 8}, {13, 9}, {64, 17}, {31, 64}, {200, 23}} {
		n, dim := shape[0], shape[1]
		flat := make([]float32, n*dim)
		for i := range flat {
			flat[i] = float32(rng.NormFloat64())
		}
		// A duplicated row forces v == 0 through the clamp path.
		qs := make([][]float32, 4)
		for j := range qs {
			qs[j] = make([]float32, dim)
			for i := range qs[j] {
				qs[j][i] = float32(rng.NormFloat64())
			}
		}
		copy(flat[:dim], qs[0])
		if n > 2 {
			flat[dim] = float32(inf(1)) // row 1 → NaN distances
		}
		norms := SqNorms32(nil, flat, n, dim)
		qn := [4]float32{SqNorm32(qs[0]), SqNorm32(qs[1]), SqNorm32(qs[2]), SqNorm32(qs[3])}
		want := make([]float64, 4*n)
		sqL2Gemv4x32Go(want, n, flat, dim, norms, qs[0], qs[1], qs[2], qs[3], &qn)
		for _, k := range kernels {
			got := make([]float64, 4*n)
			k.f(got, n, flat, dim, norms, qs[0], qs[1], qs[2], qs[3], &qn)
			for i := range want {
				if got[i] != want[i] && !(isNaN64(got[i]) && isNaN64(want[i])) {
					t.Fatalf("%s n=%d dim=%d: dst4[%d] = %v, want %v", k.name, n, dim, i, got[i], want[i])
				}
			}
		}
	}
}

func inf(sign int) float64   { return math.Inf(sign) }
func isNaN64(v float64) bool { return v != v }
