// SSE2 dot-product kernels behind the norm-precompute distance scan.
//
// float64: each query accumulates into a single 2-lane xmm register —
// per 4-element chunk the products of elements {i, i+1} and {i+2, i+3}
// are added into the same register (lane 0 collects even offsets, lane 1
// odd offsets), the scalar tail accumulates into lane 0, and the final
// value is lane0 + lane1.
//
// float32: each query accumulates into TWO 4-lane xmm registers — lanes
// are offsets mod 8, chunk {i..i+3} adds into the first register and
// {i+4..i+7} into the second, so the two ADDPS per chunk are independent
// and the per-chunk critical path is a single ADDPS (the f32 scan is
// compute-bound where the f64 scan is bandwidth-bound; the shorter chain
// is what lets it reach the 2x traffic advantage). The scalar tail
// accumulates into lane 0, and the final value is
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
//
// dot4x64/dot4x32 run four queries against one row with private
// accumulators per query, so each query's sum uses exactly the tree of
// the single-query kernels — distances therefore do not depend on how
// queries are grouped into batches. dotTreeGo64 and dotTreeGo32
// (dot_kernels.go) mirror the trees in pure Go; the kernels here must
// stay bit-identical to them (TestDotKernelsMatchGoTree).
//
// The float32 kernels exist twice: an SSE2 body (the amd64 v1 baseline;
// two xmm accumulators per query) and an AVX body (one ymm accumulator
// per query — the 8-lane tree is exactly one 256-bit register, so the
// wide kernel computes the same bits with half the instructions).
// dot_amd64.go picks at startup via cpuHasAVX; TestDot32AVXMatchesSSE
// pins the two bodies against each other. The float64 kernels are SSE2
// only — their 2-lane tree is frozen by the float64 golden files, and
// the f64 scan is memory-bound where extra width would not pay anyway.
// No FMA anywhere: fused multiply-adds round differently.

#include "textflag.h"

// func dot1x64(a, b []float64) float64
TEXT ·dot1x64(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	XORPS X0, X0
	MOVQ  CX, BX
	SHRQ  $2, BX
	JZ    tail
loop4:
	MOVUPD 0(SI), X4
	MOVUPD 16(SI), X5
	MOVUPD 0(DI), X6
	MOVUPD 16(DI), X7
	MULPD  X4, X6
	MULPD  X5, X7
	ADDPD  X6, X0
	ADDPD  X7, X0
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    loop4
tail:
	ANDQ $3, CX
	JZ   done
tailloop:
	MOVSD 0(SI), X4
	MULSD 0(DI), X4
	ADDSD X4, X0
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JNZ   tailloop
done:
	MOVAPD   X0, X1
	UNPCKHPD X1, X1
	ADDSD    X1, X0
	MOVSD    X0, ret+48(FP)
	RET

// func dot1x32sse(a, b []float32) float32
TEXT ·dot1x32sse(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	XORPS X0, X0
	XORPS X1, X1
	MOVQ  CX, BX
	SHRQ  $3, BX
	JZ    tail
loop8:
	MOVUPS 0(SI), X4
	MOVUPS 16(SI), X5
	MOVUPS 0(DI), X6
	MOVUPS 16(DI), X7
	MULPS  X4, X6
	MULPS  X5, X7
	ADDPS  X6, X0
	ADDPS  X7, X1
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    loop8
tail:
	ANDQ $7, CX
	JZ   done
tailloop:
	MOVSS 0(SI), X4
	MULSS 0(DI), X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   tailloop
done:
	// Fold the 8 lanes: lanes 4-7 onto 0-3, then the 4-lane horizontal
	// sum ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
	ADDPS   X1, X0
	MOVAPS  X0, X1
	MOVHLPS X1, X1
	ADDPS   X1, X0
	MOVAPS  X0, X1
	SHUFPS  $0x55, X1, X1
	ADDSS   X1, X0
	MOVSS   X0, ret+48(FP)
	RET

// func dot4x64(row, q0, q1, q2, q3 []float64, out *[4]float64)
TEXT ·dot4x64(SB), NOSPLIT, $0-128
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ q0_base+24(FP), DI
	MOVQ q1_base+48(FP), R8
	MOVQ q2_base+72(FP), R9
	MOVQ q3_base+96(FP), R10
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	MOVQ  CX, BX
	SHRQ  $2, BX
	JZ    tail
loop4:
	MOVUPD 0(SI), X4
	MOVUPD 16(SI), X5
	MOVUPD 0(DI), X6
	MOVUPD 16(DI), X7
	MULPD  X4, X6
	MULPD  X5, X7
	ADDPD  X6, X0
	ADDPD  X7, X0
	MOVUPD 0(R8), X6
	MOVUPD 16(R8), X7
	MULPD  X4, X6
	MULPD  X5, X7
	ADDPD  X6, X1
	ADDPD  X7, X1
	MOVUPD 0(R9), X6
	MOVUPD 16(R9), X7
	MULPD  X4, X6
	MULPD  X5, X7
	ADDPD  X6, X2
	ADDPD  X7, X2
	MOVUPD 0(R10), X6
	MOVUPD 16(R10), X7
	MULPD  X4, X6
	MULPD  X5, X7
	ADDPD  X6, X3
	ADDPD  X7, X3
	ADDQ   $32, SI
	ADDQ   $32, DI
	ADDQ   $32, R8
	ADDQ   $32, R9
	ADDQ   $32, R10
	DECQ   BX
	JNZ    loop4
tail:
	ANDQ $3, CX
	JZ   done
tailloop:
	MOVSD 0(SI), X4
	MOVSD 0(DI), X6
	MULSD X4, X6
	ADDSD X6, X0
	MOVSD 0(R8), X6
	MULSD X4, X6
	ADDSD X6, X1
	MOVSD 0(R9), X6
	MULSD X4, X6
	ADDSD X6, X2
	MOVSD 0(R10), X6
	MULSD X4, X6
	ADDSD X6, X3
	ADDQ  $8, SI
	ADDQ  $8, DI
	ADDQ  $8, R8
	ADDQ  $8, R9
	ADDQ  $8, R10
	DECQ  CX
	JNZ   tailloop
done:
	MOVQ     out+120(FP), AX
	MOVAPD   X0, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X0
	MOVSD    X0, 0(AX)
	MOVAPD   X1, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X1
	MOVSD    X1, 8(AX)
	MOVAPD   X2, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X2
	MOVSD    X2, 16(AX)
	MOVAPD   X3, X4
	UNPCKHPD X4, X4
	ADDSD    X4, X3
	MOVSD    X3, 24(AX)
	RET

// func dot4x32sse(row, q0, q1, q2, q3 []float32, out *[4]float32)
//
// Accumulator pairs per query: q0 in X0:X1, q1 in X2:X3, q2 in X4:X5,
// q3 in X6:X7 (first register lanes 0-3, second lanes 4-7). Row chunks
// load into X8:X9; X10:X11 are the per-query product temporaries.
TEXT ·dot4x32sse(SB), NOSPLIT, $0-128
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ q0_base+24(FP), DI
	MOVQ q1_base+48(FP), R8
	MOVQ q2_base+72(FP), R9
	MOVQ q3_base+96(FP), R10
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	MOVQ  CX, BX
	SHRQ  $3, BX
	JZ    tail
loop8:
	MOVUPS 0(SI), X8
	MOVUPS 16(SI), X9
	MOVUPS 0(DI), X10
	MOVUPS 16(DI), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1
	MOVUPS 0(R8), X10
	MOVUPS 16(R8), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X2
	ADDPS  X11, X3
	MOVUPS 0(R9), X10
	MOVUPS 16(R9), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5
	MOVUPS 0(R10), X10
	MOVUPS 16(R10), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X6
	ADDPS  X11, X7
	ADDQ   $32, SI
	ADDQ   $32, DI
	ADDQ   $32, R8
	ADDQ   $32, R9
	ADDQ   $32, R10
	DECQ   BX
	JNZ    loop8
tail:
	ANDQ $7, CX
	JZ   done
tailloop:
	MOVSS 0(SI), X8
	MOVSS 0(DI), X10
	MULSS X8, X10
	ADDSS X10, X0
	MOVSS 0(R8), X10
	MULSS X8, X10
	ADDSS X10, X2
	MOVSS 0(R9), X10
	MULSS X8, X10
	ADDSS X10, X4
	MOVSS 0(R10), X10
	MULSS X8, X10
	ADDSS X10, X6
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R8
	ADDQ  $4, R9
	ADDQ  $4, R10
	DECQ  CX
	JNZ   tailloop
done:
	MOVQ    out+120(FP), AX
	ADDPS   X1, X0
	MOVAPS  X0, X8
	MOVHLPS X8, X8
	ADDPS   X8, X0
	MOVAPS  X0, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X0
	MOVSS   X0, 0(AX)
	ADDPS   X3, X2
	MOVAPS  X2, X8
	MOVHLPS X8, X8
	ADDPS   X8, X2
	MOVAPS  X2, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X2
	MOVSS   X2, 4(AX)
	ADDPS   X5, X4
	MOVAPS  X4, X8
	MOVHLPS X8, X8
	ADDPS   X8, X4
	MOVAPS  X4, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X4
	MOVSS   X4, 8(AX)
	ADDPS   X7, X6
	MOVAPS  X6, X8
	MOVHLPS X8, X8
	ADDPS   X8, X6
	MOVAPS  X6, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X6
	MOVSS   X6, 12(AX)
	RET

// func dot1x32avx(a, b []float32) float32
//
// The 8-lane tree in one ymm accumulator: a chunk's eight products land
// on lanes 0-7 with a single VADDPS, so the per-chunk critical path is
// one add — same bits as dot1x32sse, half the instructions. Lanes 4-7
// are extracted to X1 before the scalar tail (VEX 128-bit writes zero
// the upper half), the tail accumulates into lane 0, and the fold is
// the shared ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
TEXT ·dot1x32avx(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     fold
loop8:
	VMOVUPS 0(SI), Y4
	VMULPS  0(DI), Y4, Y4
	VADDPS  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    BX
	JNZ     loop8
fold:
	VEXTRACTF128 $1, Y0, X1
	VZEROUPPER
	ANDQ $7, CX
	JZ   combine
tailloop:
	MOVSS 0(SI), X4
	MULSS 0(DI), X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   tailloop
combine:
	ADDPS   X1, X0
	MOVAPS  X0, X1
	MOVHLPS X1, X1
	ADDPS   X1, X0
	MOVAPS  X0, X1
	SHUFPS  $0x55, X1, X1
	ADDSS   X1, X0
	MOVSS   X0, ret+48(FP)
	RET

// func dot4x32avx(row, q0, q1, q2, q3 []float32, out *[4]float32)
//
// One ymm accumulator per query (Y0-Y3), row chunk in Y8, per-query
// product temporaries Y9-Y12. Upper halves are extracted to X4-X7
// before the scalar tail; the folds match dot4x32sse exactly.
TEXT ·dot4x32avx(SB), NOSPLIT, $0-128
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ q0_base+24(FP), DI
	MOVQ q1_base+48(FP), R8
	MOVQ q2_base+72(FP), R9
	MOVQ q3_base+96(FP), R10
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   CX, BX
	SHRQ   $3, BX
	JZ     fold
loop8:
	VMOVUPS 0(SI), Y8
	VMOVUPS 0(DI), Y9
	VMOVUPS 0(R8), Y10
	VMOVUPS 0(R9), Y11
	VMOVUPS 0(R10), Y12
	VMULPS  Y8, Y9, Y9
	VMULPS  Y8, Y10, Y10
	VMULPS  Y8, Y11, Y11
	VMULPS  Y8, Y12, Y12
	VADDPS  Y9, Y0, Y0
	VADDPS  Y10, Y1, Y1
	VADDPS  Y11, Y2, Y2
	VADDPS  Y12, Y3, Y3
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	DECQ    BX
	JNZ     loop8
fold:
	VEXTRACTF128 $1, Y0, X4
	VEXTRACTF128 $1, Y1, X5
	VEXTRACTF128 $1, Y2, X6
	VEXTRACTF128 $1, Y3, X7
	VZEROUPPER
	ANDQ $7, CX
	JZ   combine
tailloop:
	MOVSS 0(SI), X8
	MOVSS 0(DI), X10
	MULSS X8, X10
	ADDSS X10, X0
	MOVSS 0(R8), X10
	MULSS X8, X10
	ADDSS X10, X1
	MOVSS 0(R9), X10
	MULSS X8, X10
	ADDSS X10, X2
	MOVSS 0(R10), X10
	MULSS X8, X10
	ADDSS X10, X3
	ADDQ  $4, SI
	ADDQ  $4, DI
	ADDQ  $4, R8
	ADDQ  $4, R9
	ADDQ  $4, R10
	DECQ  CX
	JNZ   tailloop
combine:
	MOVQ    out+120(FP), AX
	ADDPS   X4, X0
	MOVAPS  X0, X8
	MOVHLPS X8, X8
	ADDPS   X8, X0
	MOVAPS  X0, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X0
	MOVSS   X0, 0(AX)
	ADDPS   X5, X1
	MOVAPS  X1, X8
	MOVHLPS X8, X8
	ADDPS   X8, X1
	MOVAPS  X1, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X1
	MOVSS   X1, 4(AX)
	ADDPS   X6, X2
	MOVAPS  X2, X8
	MOVHLPS X8, X8
	ADDPS   X8, X2
	MOVAPS  X2, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X2
	MOVSS   X2, 8(AX)
	ADDPS   X7, X3
	MOVAPS  X3, X8
	MOVHLPS X8, X8
	ADDPS   X8, X3
	MOVAPS  X3, X8
	SHUFPS  $0x55, X8, X8
	ADDSS   X8, X3
	MOVSS   X3, 12(AX)
	RET

// func cpuHasAVX() bool
//
// True when the CPU reports AVX and the OS has enabled xmm+ymm state
// saving (OSXSAVE set and XCR0 bits 1-2 set) — the complete condition
// for VEX 256-bit instructions to be usable.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, DX
	ANDL $(1<<27 | 1<<28), DX
	CMPL DX, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func gemv4x32sse(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)
//
// One whole four-query distance group in a single call: for every row r,
// accumulate the four dots with the 8-lane tree (accumulator pairs
// X0:X1, X2:X3, X4:X5, X6:X7), fold them TRANSPOSED into one packed
// register (each lane ends up exactly (x0+x2)+(x1+x3) of that query's
// 4-lane partials — the same association as the scalar fold), then
// finish v = nr + qn - 2·dot, the <0 clamp, and the float64 widening as
// packed lane-wise ops (IEEE identical to the scalar expressions of
// sqL2Gemv4x32Go). Row data is indexed by BX so the query base pointers
// never move; distance rows d0..d3 are the n-strided columns of dst4
// (R11 walks d0/d1, R13 = R11 + 2n·8 walks d2/d3, R12 = n·8).
// X12 holds the packed query norms, X13 a packed zero for the clamp;
// BP (saved) walks the row norms.
TEXT ·gemv4x32sse(SB), NOSPLIT, $16-192
	MOVQ BP, 8(SP)
	MOVQ dst4_base+0(FP), R11
	MOVQ n+24(FP), AX
	TESTQ AX, AX
	JZ   done
	MOVQ AX, R12
	SHLQ $3, R12
	LEAQ (R11)(R12*2), R13
	MOVQ flat_base+32(FP), SI
	MOVQ dim+56(FP), CX
	MOVQ norms_base+64(FP), BP
	MOVQ q0_base+88(FP), DI
	MOVQ q1_base+112(FP), R8
	MOVQ q2_base+136(FP), R9
	MOVQ q3_base+160(FP), R10
	MOVQ qn+184(FP), DX
	MOVUPS (DX), X12
	XORPS X13, X13
	MOVQ CX, BX
	SHLQ $2, BX
	MOVQ BX, 0(SP)
	MOVQ CX, DX
	ANDQ $-8, DX
	SHLQ $2, DX
rowloop:
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORQ  BX, BX
	TESTQ DX, DX
	JZ    tailcheck
chunk:
	MOVUPS (SI)(BX*1), X8
	MOVUPS 16(SI)(BX*1), X9
	MOVUPS (DI)(BX*1), X10
	MOVUPS 16(DI)(BX*1), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X0
	ADDPS  X11, X1
	MOVUPS (R8)(BX*1), X10
	MOVUPS 16(R8)(BX*1), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X2
	ADDPS  X11, X3
	MOVUPS (R9)(BX*1), X10
	MOVUPS 16(R9)(BX*1), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X4
	ADDPS  X11, X5
	MOVUPS (R10)(BX*1), X10
	MOVUPS 16(R10)(BX*1), X11
	MULPS  X8, X10
	MULPS  X9, X11
	ADDPS  X10, X6
	ADDPS  X11, X7
	ADDQ   $32, BX
	CMPQ   BX, DX
	JLT    chunk
tailcheck:
	MOVQ 0(SP), CX
	CMPQ BX, CX
	JGE  fold
tailloop:
	MOVSS (SI)(BX*1), X8
	MOVSS (DI)(BX*1), X10
	MULSS X8, X10
	ADDSS X10, X0
	MOVSS (R8)(BX*1), X10
	MULSS X8, X10
	ADDSS X10, X2
	MOVSS (R9)(BX*1), X10
	MULSS X8, X10
	ADDSS X10, X4
	MOVSS (R10)(BX*1), X10
	MULSS X8, X10
	ADDSS X10, X6
	ADDQ  $4, BX
	CMPQ  BX, CX
	JLT   tailloop
fold:
	ADDPS    X1, X0
	ADDPS    X3, X2
	ADDPS    X5, X4
	ADDPS    X7, X6
	MOVAPS   X0, X8
	UNPCKLPS X2, X0
	UNPCKHPS X2, X8
	MOVAPS   X4, X9
	UNPCKLPS X6, X4
	UNPCKHPS X6, X9
	MOVAPS   X0, X10
	MOVLHPS  X4, X0
	MOVHLPS  X10, X4
	MOVAPS   X8, X10
	MOVLHPS  X9, X8
	MOVHLPS  X10, X9
	ADDPS    X8, X0
	ADDPS    X9, X4
	ADDPS    X4, X0
	MOVSS    (BP), X1
	SHUFPS   $0x00, X1, X1
	ADDPS    X12, X1
	ADDPS    X0, X0
	SUBPS    X0, X1
	MOVAPS   X1, X2
	CMPPS    X13, X2, $1
	ANDNPS   X1, X2
	CVTPS2PD X2, X0
	MOVAPS   X2, X1
	MOVHLPS  X1, X1
	CVTPS2PD X1, X1
	MOVSD    X0, (R11)
	UNPCKHPD X0, X0
	MOVSD    X0, (R11)(R12*1)
	MOVSD    X1, (R13)
	UNPCKHPD X1, X1
	MOVSD    X1, (R13)(R12*1)
	ADDQ $8, R11
	ADDQ $8, R13
	ADDQ $4, BP
	ADDQ CX, SI
	DECQ AX
	JNZ  rowloop
done:
	MOVQ 8(SP), BP
	RET

// func gemv4x32avx(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)
//
// The AVX body of the group sweep: one ymm accumulator per query
// (Y0-Y3, products in Y4-Y7, row chunk in Y8), lanes 4-7 extracted to
// X8-X11 before the scalar tail, then the identical transposed fold and
// packed distance epilogue of gemv4x32sse. Register map otherwise as in
// gemv4x32sse.
TEXT ·gemv4x32avx(SB), NOSPLIT, $16-192
	MOVQ BP, 8(SP)
	MOVQ dst4_base+0(FP), R11
	MOVQ n+24(FP), AX
	TESTQ AX, AX
	JZ   done
	MOVQ AX, R12
	SHLQ $3, R12
	LEAQ (R11)(R12*2), R13
	MOVQ flat_base+32(FP), SI
	MOVQ dim+56(FP), CX
	MOVQ norms_base+64(FP), BP
	MOVQ q0_base+88(FP), DI
	MOVQ q1_base+112(FP), R8
	MOVQ q2_base+136(FP), R9
	MOVQ q3_base+160(FP), R10
	MOVQ qn+184(FP), DX
	MOVUPS (DX), X12
	XORPS X13, X13
	MOVQ CX, BX
	SHLQ $2, BX
	MOVQ BX, 0(SP)
	MOVQ CX, DX
	ANDQ $-8, DX
	SHLQ $2, DX
rowloop:
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ  BX, BX
	TESTQ DX, DX
	JZ    extract
chunk:
	VMOVUPS (SI)(BX*1), Y8
	VMOVUPS (DI)(BX*1), Y4
	VMULPS  Y8, Y4, Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS (R8)(BX*1), Y5
	VMULPS  Y8, Y5, Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS (R9)(BX*1), Y6
	VMULPS  Y8, Y6, Y6
	VADDPS  Y6, Y2, Y2
	VMOVUPS (R10)(BX*1), Y7
	VMULPS  Y8, Y7, Y7
	VADDPS  Y7, Y3, Y3
	ADDQ    $32, BX
	CMPQ    BX, DX
	JLT     chunk
extract:
	VEXTRACTF128 $1, Y0, X8
	VEXTRACTF128 $1, Y1, X9
	VEXTRACTF128 $1, Y2, X10
	VEXTRACTF128 $1, Y3, X11
	VZEROUPPER
	MOVQ 0(SP), CX
	CMPQ BX, CX
	JGE  fold
tailloop:
	MOVSS (SI)(BX*1), X4
	MOVSS (DI)(BX*1), X5
	MULSS X4, X5
	ADDSS X5, X0
	MOVSS (R8)(BX*1), X5
	MULSS X4, X5
	ADDSS X5, X1
	MOVSS (R9)(BX*1), X5
	MULSS X4, X5
	ADDSS X5, X2
	MOVSS (R10)(BX*1), X5
	MULSS X4, X5
	ADDSS X5, X3
	ADDQ  $4, BX
	CMPQ  BX, CX
	JLT   tailloop
fold:
	ADDPS    X8, X0
	ADDPS    X9, X1
	ADDPS    X10, X2
	ADDPS    X11, X3
	MOVAPS   X0, X8
	UNPCKLPS X1, X0
	UNPCKHPS X1, X8
	MOVAPS   X2, X9
	UNPCKLPS X3, X2
	UNPCKHPS X3, X9
	MOVAPS   X0, X10
	MOVLHPS  X2, X0
	MOVHLPS  X10, X2
	MOVAPS   X8, X10
	MOVLHPS  X9, X8
	MOVHLPS  X10, X9
	ADDPS    X8, X0
	ADDPS    X9, X2
	ADDPS    X2, X0
	MOVSS    (BP), X1
	SHUFPS   $0x00, X1, X1
	ADDPS    X12, X1
	ADDPS    X0, X0
	SUBPS    X0, X1
	MOVAPS   X1, X2
	CMPPS    X13, X2, $1
	ANDNPS   X1, X2
	CVTPS2PD X2, X0
	MOVAPS   X2, X1
	MOVHLPS  X1, X1
	CVTPS2PD X1, X1
	MOVSD    X0, (R11)
	UNPCKHPD X0, X0
	MOVSD    X0, (R11)(R12*1)
	MOVSD    X1, (R13)
	UNPCKHPD X1, X1
	MOVSD    X1, (R13)(R12*1)
	ADDQ $8, R11
	ADDQ $8, R13
	ADDQ $4, BP
	ADDQ CX, SI
	DECQ AX
	JNZ  rowloop
done:
	MOVQ 8(SP), BP
	RET
