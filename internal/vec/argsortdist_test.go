package vec

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// refArgsort is the specification: a stable comparison sort ascending by
// value (ties keep ascending index), with the same key transform for
// exotic floats (−0 equals +0, NaN after +Inf).
func refArgsort(dist []float64) []int {
	idx := make([]int, len(dist))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return DistKeyBits(dist[idx[a]]) < DistKeyBits(dist[idx[b]])
	})
	return idx
}

func checkArgsort(t *testing.T, dist []float64, got []int) {
	t.Helper()
	want := refArgsort(dist)
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("n=%d: idx[%d] = %d (dist %v), want %d (dist %v)",
				len(dist), i, got[i], dist[got[i]], want[i], dist[want[i]])
		}
	}
}

// Sizes straddle radixMinN so both the insertion and the radix path run.
func TestArgsortDistIntoMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	for _, n := range []int{0, 1, 2, 3, 7, radixMinN - 1, radixMinN, radixMinN + 1, 200, 1000} {
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = rng.NormFloat64() * 100
		}
		checkArgsort(t, dist, ArgsortDistInto(nil, dist))
	}
}

// A worker-owned DistSorter must produce the exact ordering of the pooled
// entry point, including across reuses (stale scratch contents from a
// previous, larger sort must not leak into the next).
func TestDistSorterMatchesArgsortDistInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 9))
	var ds DistSorter
	var buf []int
	for _, n := range []int{1000, 3, radixMinN, 0, 500, 1000} {
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = rng.NormFloat64() * 100
		}
		want := ArgsortDistInto(nil, dist)
		buf = ds.ArgsortInto(buf, dist)
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d: idx[%d] = %d, want %d", n, i, buf[i], want[i])
			}
		}
	}
}

// Heavy ties: the radix payload scatter must preserve ascending index
// within equal keys (the α-ordering tie rule of Theorem 1).
func TestArgsortDistIntoTies(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 2))
	for _, n := range []int{5, radixMinN, 500} {
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = float64(rng.IntN(4)) // few distinct values, many ties
		}
		checkArgsort(t, dist, ArgsortDistInto(nil, dist))
	}
}

// Exotic floats: ±0 must compare equal (index decides), negatives sort
// before positives, NaN after +Inf — on both the radix and the insertion
// path.
func TestArgsortDistIntoExoticFloats(t *testing.T) {
	base := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Inf(1), math.Inf(-1),
		math.NaN(), 1e-300, -1e-300, math.MaxFloat64, -math.MaxFloat64, 2, 0,
	}
	small := append([]float64(nil), base...)
	checkArgsort(t, small, ArgsortDistInto(nil, small))
	big := make([]float64, 0, 26*len(base))
	for i := 0; i < 26; i++ {
		big = append(big, base...)
	}
	checkArgsort(t, big, ArgsortDistInto(nil, big))
}

func TestArgsortDistIntoReusesBuffer(t *testing.T) {
	dist := []float64{3, 1, 2}
	buf := make([]int, 0, 8)
	got := ArgsortDistInto(buf, dist)
	if &got[0] != &buf[:1][0] {
		t.Fatal("buffer not reused")
	}
	again := ArgsortDistInto(got, dist)
	if &again[0] != &got[0] {
		t.Fatal("buffer not reused on second call")
	}
}

// FuzzArgsortDist feeds arbitrary byte-derived float64s (including NaN
// payloads, infinities and denormals) through both sort paths.
func FuzzArgsortDist(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255}, true)
	f.Fuzz(func(t *testing.T, raw []byte, grow bool) {
		n := len(raw) / 8
		if n == 0 {
			return
		}
		dist := make([]float64, 0, n*9)
		for i := 0; i < n; i++ {
			var bits uint64
			for j := 0; j < 8; j++ {
				bits = bits<<8 | uint64(raw[i*8+j])
			}
			dist = append(dist, math.Float64frombits(bits))
		}
		if grow {
			// Replicate past radixMinN so the radix path runs too.
			for len(dist) < radixMinN+1 {
				dist = append(dist, dist...)
			}
		}
		checkArgsort(t, dist, ArgsortDistInto(nil, dist))
	})
}
