//go:build amd64

package vec

// The dot-product kernels of dot_amd64.s. Contracts:
//   - dot1x64/dot1x32: len(b) >= len(a); returns the (a·b) over len(a)
//     elements with the summation tree documented in dot_amd64.s.
//   - dot4x64/dot4x32: len(q0..q3) >= len(row); out[j] = row·qj, each
//     accumulated with exactly the dot1 tree, so grouping queries four at
//     a time changes no bits versus one-at-a-time evaluation.
//
// The float32 kernels have an SSE2 body (works on every amd64) and an
// AVX body (one 8-lane ymm accumulator per query — the same summation
// tree, twice the width). useAVX picks once at startup; both bodies are
// bit-identical, so the choice is invisible to callers.

// useAVX reports whether the 256-bit float32 kernels are usable on this
// machine (CPU advertises AVX and the OS saves ymm state).
var useAVX = cpuHasAVX()

func cpuHasAVX() bool

func dot1x32(a, b []float32) float32 {
	if useAVX {
		return dot1x32avx(a, b)
	}
	return dot1x32sse(a, b)
}

func dot4x32(row, q0, q1, q2, q3 []float32, out *[4]float32) {
	if useAVX {
		dot4x32avx(row, q0, q1, q2, q3, out)
		return
	}
	dot4x32sse(row, q0, q1, q2, q3, out)
}

// sqL2Gemv4x32 runs one four-query distance group — every row's dots,
// norms arithmetic, clamp, and float64 widening — as a single assembly
// sweep, eliminating the per-row call and slicing overhead of the
// portable loop. Bit-identical to sqL2Gemv4x32Go.
func sqL2Gemv4x32(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32) {
	if useAVX {
		gemv4x32avx(dst4, n, flat, dim, norms, q0, q1, q2, q3, qn)
		return
	}
	gemv4x32sse(dst4, n, flat, dim, norms, q0, q1, q2, q3, qn)
}

//go:noescape
func dot1x64(a, b []float64) float64

//go:noescape
func dot4x64(row, q0, q1, q2, q3 []float64, out *[4]float64)

//go:noescape
func dot1x32sse(a, b []float32) float32

//go:noescape
func dot1x32avx(a, b []float32) float32

//go:noescape
func dot4x32sse(row, q0, q1, q2, q3 []float32, out *[4]float32)

//go:noescape
func dot4x32avx(row, q0, q1, q2, q3 []float32, out *[4]float32)

//go:noescape
func gemv4x32sse(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)

//go:noescape
func gemv4x32avx(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32)
