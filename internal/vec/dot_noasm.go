//go:build !amd64

package vec

// Portable fallbacks for the SSE2 kernels of dot_amd64.s. They call the
// shared tree implementations of dot_kernels.go, so distances computed on
// non-amd64 platforms are bit-identical to the assembly path.

func dot1x64(a, b []float64) float64 { return dotTreeGo64(a, b) }

func dot1x32(a, b []float32) float32 { return dotTreeGo32(a, b) }

func dot4x64(row, q0, q1, q2, q3 []float64, out *[4]float64) {
	out[0] = dotTreeGo64(row, q0)
	out[1] = dotTreeGo64(row, q1)
	out[2] = dotTreeGo64(row, q2)
	out[3] = dotTreeGo64(row, q3)
}

func dot4x32(row, q0, q1, q2, q3 []float32, out *[4]float32) {
	out[0] = dotTreeGo32(row, q0)
	out[1] = dotTreeGo32(row, q1)
	out[2] = dotTreeGo32(row, q2)
	out[3] = dotTreeGo32(row, q3)
}

func sqL2Gemv4x32(dst4 []float64, n int, flat []float32, dim int, norms []float32, q0, q1, q2, q3 []float32, qn *[4]float32) {
	sqL2Gemv4x32Go(dst4, n, flat, dim, norms, q0, q1, q2, q3, qn)
}
