package vec

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSqL2(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0}, []float64{0}, 0},
		{[]float64{1, 2, 3}, []float64{1, 2, 3}, 0},
		{[]float64{0, 0}, []float64{3, 4}, 25},
		{[]float64{1, 1, 1, 1, 1}, []float64{0, 0, 0, 0, 0}, 5},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := SqL2(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("SqL2(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSqL2UnrolledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 100} {
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		var naive float64
		for i := range a {
			diff := a[i] - b[i]
			naive += diff * diff
		}
		if got := SqL2(a, b); !almostEq(got, naive, 1e-9*(1+naive)) {
			t.Errorf("dim %d: SqL2=%v naive=%v", d, got, naive)
		}
	}
}

func TestDotUnrolledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, d := range []int{1, 3, 4, 9, 64, 129} {
		a := make([]float64, d)
		b := make([]float64, d)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		var naive float64
		for i := range a {
			naive += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEq(got, naive, 1e-9*(1+math.Abs(naive))) {
			t.Errorf("dim %d: Dot=%v naive=%v", d, got, naive)
		}
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SqL2([]float64{1}, []float64{1, 2})
}

func TestMetricDistance(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := L2.Distance(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("L2 = %v want 5", got)
	}
	if got := SquaredL2.Distance(a, b); !almostEq(got, 25, 1e-12) {
		t.Errorf("SquaredL2 = %v want 25", got)
	}
	if got := L1.Distance(a, b); !almostEq(got, 7, 1e-12) {
		t.Errorf("L1 = %v want 7", got)
	}
	if got := Cosine.Distance([]float64{1, 0}, []float64{1, 0}); !almostEq(got, 0, 1e-12) {
		t.Errorf("Cosine same direction = %v want 0", got)
	}
	if got := Cosine.Distance([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("Cosine orthogonal = %v want 1", got)
	}
	if got := Cosine.Distance([]float64{0, 0}, []float64{1, 0}); !almostEq(got, 1, 1e-12) {
		t.Errorf("Cosine zero vector = %v want 1", got)
	}
}

func TestMetricString(t *testing.T) {
	for m, want := range map[Metric]string{L2: "l2", SquaredL2: "sql2", L1: "l1", Cosine: "cosine"} {
		if m.String() != want {
			t.Errorf("String(%d) = %q want %q", int(m), m.String(), want)
		}
	}
}

// Property: L2 satisfies the metric axioms (symmetry, identity, triangle
// inequality) on random vectors.
func TestL2MetricAxioms(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := []float64{clamp(ax), clamp(ay)}
		b := []float64{clamp(bx), clamp(by)}
		c := []float64{clamp(cx), clamp(cy)}
		dab := L2Dist(a, b)
		dba := L2Dist(b, a)
		if !almostEq(dab, dba, 1e-9) {
			return false
		}
		if L2Dist(a, a) != 0 {
			return false
		}
		rhs := dab + L2Dist(b, c)
		return L2Dist(a, c) <= rhs+1e-9*(1+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArgsort(t *testing.T) {
	d := []float64{3, 1, 2, 1}
	got := Argsort(d)
	want := []int{1, 3, 2, 0} // stable: ties by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Argsort(%v) = %v want %v", d, got, want)
		}
	}
}

func TestArgsortIsSortingPermutation(t *testing.T) {
	f := func(raw []float64) bool {
		d := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d = append(d, v)
			}
		}
		idx := Argsort(d)
		if len(idx) != len(d) {
			return false
		}
		seen := make([]bool, len(d))
		for _, i := range idx {
			if i < 0 || i >= len(d) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return sort.SliceIsSorted(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArgsortBy(t *testing.T) {
	vals := []float64{5, -1, 3}
	idx := ArgsortBy(len(vals), func(i int) float64 { return vals[i] })
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("ArgsortBy = %v want %v", idx, want)
		}
	}
}

func TestDistances(t *testing.T) {
	pts := [][]float64{{0, 0}, {3, 4}, {6, 8}}
	q := []float64{0, 0}
	out := Distances(L2, pts, q, nil)
	want := []float64{0, 5, 10}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("Distances = %v want %v", out, want)
		}
	}
	// Reuse buffer.
	buf := make([]float64, 8)
	out2 := Distances(L2, pts, q, buf)
	if len(out2) != 3 {
		t.Fatalf("Distances reuse len = %d want 3", len(out2))
	}
}

func TestScaleAXPYClone(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 2)
	if a[0] != 2 || a[1] != 4 {
		t.Fatalf("Scale: %v", a)
	}
	AXPY(a, 3, []float64{1, 1})
	if a[0] != 5 || a[1] != 7 {
		t.Fatalf("AXPY: %v", a)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("Clone aliases input")
	}
}

func TestMeanSumMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Error("Sum wrong")
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
}

func TestNorm(t *testing.T) {
	if !almostEq(Norm([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm wrong")
	}
}

func BenchmarkSqL2Dim128(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SqL2(x, y)
	}
}
