package vec

import (
	"math"
	"sync"
)

// ArgsortDistInto fills idx (reallocated only when too short) with
// 0..len(dist)-1 ordered ascending by (dist, index) — the α ordering of
// Theorem 1 — and returns it. It is the total-order primitive of the exact
// Shapley recursion and the hot half of the per-test-point cost, so it is
// an LSD radix sort on the order-monotone bit pattern of each distance
// (8-bit digits, index payload, one upfront histogram pass that skips
// digits shared by every key) instead of a comparison sort: O(N) passes
// versus O(N log N) comparisons through interfaces.
//
// The ordering matches a stable comparison sort on the values exactly,
// for every float64 input: -0 and +0 compare equal and fall back to index
// order, and NaN sorts after +Inf (with NaN ties again by index). Small
// inputs (< radixMinN) use an insertion sort on the identical key
// transform, so the order never depends on input size.
func ArgsortDistInto(idx []int, dist []float64) []int {
	idx, done := argsortSmall(idx, dist)
	if done {
		return idx
	}
	s := distSortPool.Get().(*distSortScratch)
	s.sort(idx, dist)
	distSortPool.Put(s)
	return idx
}

// DistSorter is an owned radix scratch for the ArgsortDistInto ordering.
// Callers that sort on every test point (the engine's per-worker Scratch)
// hold one instead of using the package-level pool: the buffers then live
// exactly as long as the worker, with no cross-worker pool traffic — and
// no reallocation churn under the race detector, whose sync.Pool
// deliberately drops a fraction of Puts. The zero value is ready to use.
type DistSorter struct{ s distSortScratch }

// ArgsortInto is ArgsortDistInto using the sorter's owned scratch.
func (ds *DistSorter) ArgsortInto(idx []int, dist []float64) []int {
	idx, done := argsortSmall(idx, dist)
	if done {
		return idx
	}
	ds.s.sort(idx, dist)
	return idx
}

// argsortSmall resizes idx and handles the sub-radixMinN insertion-sort
// case shared by the pool and owned-scratch entry points; done reports
// whether the sort already happened.
func argsortSmall(idx []int, dist []float64) ([]int, bool) {
	n := len(dist)
	if cap(idx) < n {
		idx = make([]int, n)
	}
	idx = idx[:n]
	if n >= radixMinN {
		return idx, false
	}
	for i := range idx {
		idx[i] = i
	}
	insertionArgsortBits(idx, dist)
	return idx, true
}

// radixMinN is the input size below which the radix machinery (histogram
// zeroing, scratch traffic) loses to a plain insertion sort.
const radixMinN = 64

// DistKeyBits maps v onto bits whose unsigned order equals the (v, ties
// pending) comparison order for all floats: negative values flip entirely,
// non-negative values set the sign bit. Adding 0 first normalizes -0 to +0
// so the two zeros map to one key and ties resolve by index. It is exported
// as the comparison key for anything that must reproduce this package's
// total order externally — the cluster coordinator's k-way neighbor merge
// orders shard-local lists by (DistKeyBits(dist), index) so the merged
// ranking equals a single ArgsortDistInto over the unsharded distances.
func DistKeyBits(v float64) uint64 {
	b := math.Float64bits(v + 0)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// insertionArgsortBits sorts idx ascending by (DistKeyBits(dist[i]), i).
func insertionArgsortBits(idx []int, dist []float64) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		kx := DistKeyBits(dist[x])
		j := i
		for ; j > 0; j-- {
			y := idx[j-1]
			ky := DistKeyBits(dist[y])
			if ky < kx || (ky == kx && y < x) {
				break
			}
			idx[j] = y
		}
		idx[j] = x
	}
}

// distSortScratch holds the radix buffers: keys plus a double-buffered
// (key, index) pair per element. A sync.Pool amortizes them across calls
// and workers without threading a scratch parameter through OrderInto.
type distSortScratch struct {
	keys, tmpKeys []uint64
	tmpIdx        []int
}

var distSortPool = sync.Pool{New: func() any { return new(distSortScratch) }}

func (s *distSortScratch) sort(idx []int, dist []float64) {
	n := len(dist)
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
		s.tmpKeys = make([]uint64, n)
		s.tmpIdx = make([]int, n)
	}
	keys, tmpKeys, tmpIdx := s.keys[:n], s.tmpKeys[:n], s.tmpIdx[:n]

	// Key extraction plus all eight digit histograms in one pass.
	var hist [8][256]uint32
	for i := 0; i < n; i++ {
		k := DistKeyBits(dist[i])
		keys[i] = k
		idx[i] = i
		hist[0][k&0xff]++
		hist[1][(k>>8)&0xff]++
		hist[2][(k>>16)&0xff]++
		hist[3][(k>>24)&0xff]++
		hist[4][(k>>32)&0xff]++
		hist[5][(k>>40)&0xff]++
		hist[6][(k>>48)&0xff]++
		hist[7][(k>>56)&0xff]++
	}

	src, dst := keys, tmpKeys
	srcI, dstI := idx, tmpIdx
	for pass := 0; pass < 8; pass++ {
		h := &hist[pass]
		shift := uint(pass * 8)
		// A digit every key shares permutes nothing: skip the pass. This
		// is the common case for the high exponent bytes of a bounded
		// distance range.
		if int(h[(src[0]>>shift)&0xff]) == n {
			continue
		}
		var offs [256]uint32
		var sum uint32
		for v := 0; v < 256; v++ {
			offs[v] = sum
			sum += h[v]
		}
		for i := 0; i < n; i++ {
			k := src[i]
			v := (k >> shift) & 0xff
			o := offs[v]
			offs[v] = o + 1
			dst[o] = k
			dstI[o] = srcI[i]
		}
		src, dst = dst, src
		srcI, dstI = dstI, srcI
	}
	// LSD stability plus the ascending initial fill makes equal keys come
	// out in ascending index order — the tie rule of the α ordering.
	if &srcI[0] != &idx[0] {
		copy(idx, srcI)
	}
}
