#!/usr/bin/env bash
# Tier-1 verification: formatting, vet, build, tests, and a race pass over
# the execution engine. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core
