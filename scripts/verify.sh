#!/usr/bin/env bash
# Tier-1 verification: formatting, vet (./... spans the library, commands
# and examples), build, tests (including the method-registry Validate
# tables, the Evaluate equivalence suite and the <1µs dispatch-overhead
# gate), race passes over the execution engine, the job manager, the
# dataset registry, the cluster coordinator and the context-cancellation
# paths, a race pass over the distance/argsort kernels and their callers
# (vec, knn, kheap), a GOAMD64=v3 cross-build of the assembly, fuzz smoke
# runs over the decode/storage/shard-codec surfaces, a serving benchmark
# of the upload-once/value-many registry path, a method-discovery
# end-to-end run (a real svserver answering "svcli methods"), a
# multi-process cluster end-to-end run (three workers + coordinator,
# by-ref scatter-gather bit-identical to in-process, one worker SIGKILLed
# mid-job, SIGTERM drain), a crash-durability end-to-end run (svserver
# SIGKILLed mid-job, restarted on the same data dir; the write-ahead job
# journal must replay the job under its original ID with a bit-identical
# result), an incremental-delta end-to-end run (upload, value, append rows
# via PUT /datasets/{id}/delta, re-value; bit-identical to from-scratch
# with /metrics proving the O(ΔN) patch path ran), a planner/index-store
# end-to-end run (algo=auto picks truncated cold, an explicit kd index
# build job persists a .knnsi artifact, the restarted server recovers it,
# auto flips to kd with /metrics proving the reload, and the dataset
# delete cascades onto the artifact), and a short svbench smoke (to
# $BENCH_SMOKE, default /tmp/BENCH_9.json) diffed against the committed
# BENCH_9.json baseline — records that got more than 4x slower fail the
# run.
# Run from anywhere; operates on the repo root. CI
# (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# The hand-written kernels must assemble and pass under the highest
# microarchitecture level too (VEX availability differs; the runtime AVX
# dispatch must not depend on GOAMD64).
GOAMD64=v3 go build ./...
go test ./...
go test -race ./internal/vec ./internal/knn ./internal/kheap
go test -race ./internal/core
go test -race ./internal/jobs
go test -race ./internal/journal
go test -race ./internal/registry
go test -race ./internal/cluster
go test -race ./internal/planner
go test -run TestCancel -race ./...
go test -run 'TestJob|TestStatz|TestDataset|TestValueByRef|TestValueRef|TestQueuedCancel|TestMethods|TestReplay' -race ./cmd/svserver
go test -run 'TestEvaluate|TestParams' -race .

# Fuzz smoke: ten seconds per decode/storage surface. New crashers land in
# testdata/fuzz/ and fail the run.
go test -run '^$' -fuzz FuzzFlatRoundTrip -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzBinaryCodec -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzDecodeValueRequest -fuzztime 10s ./cmd/svserver
go test -run '^$' -fuzz FuzzDecodeDeltaRequest -fuzztime 10s ./cmd/svserver
go test -run '^$' -fuzz FuzzShardReportCodec -fuzztime 10s ./internal/cluster
go test -run '^$' -fuzz FuzzShardRequestJSON -fuzztime 10s ./internal/cluster
go test -run '^$' -fuzz FuzzJournalDecode -fuzztime 10s ./internal/journal
go test -run '^$' -fuzz FuzzReadIndex -fuzztime 10s ./internal/kdtree
go test -run '^$' -fuzz FuzzReadIndex -fuzztime 10s ./internal/lsh

# Serving smoke: the upload-once/value-many comparison through the real
# HTTP handlers (inline re-ships and re-fingerprints the payload each call;
# by-ref resolves two registry IDs).
go test -run '^$' -bench 'BenchmarkValue' -benchtime 3x ./cmd/svserver

# Method discovery end-to-end: a real svserver process on an ephemeral
# port, interrogated by "svcli methods" — the declarative surface a client
# sees, checked for every built-in algorithm.
bindir=$(mktemp -d)
logfile="$bindir/svserver.log"
mkdir -p "$bindir/data"
go build -o "$bindir" ./cmd/svserver ./cmd/svcli
"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$bindir/data" >"$logfile" 2>&1 &
svpid=$!
cleanup() { kill "$svpid" 2>/dev/null || true; rm -rf "$bindir"; }
trap cleanup EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*svserver listening on \(.*\)$/\1/p' "$logfile" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "svserver did not start:" >&2
    cat "$logfile" >&2
    exit 1
fi
methods_out=$("$bindir/svcli" methods -server "http://$addr")
for name in exact truncated montecarlo baseline sellers sellersmc composite lsh kd utility auto; do
    # Herestring, not a pipe: grep -q exiting on an early match would
    # SIGPIPE the writer and trip pipefail.
    if ! grep -q "^$name " <<<"$methods_out"; then
        echo "svcli methods: method $name missing from GET /methods output:" >&2
        printf '%s\n' "$methods_out" >&2
        exit 1
    fi
done
kill "$svpid"

# Cluster end-to-end: three svserver workers plus one coordinator, all real
# processes; a by-ref valuation scattered into per-peer shards and merged
# must print output bit-identical to the same valuation run in-process (%g
# is shortest-round-trip formatting, so identical text means identical
# float64 bits). The sync run reaches the coordinator through svcli -peers
# failover past a dead URL. A second, larger async valuation gets one
# worker SIGKILLed while in flight; the coordinator must reassign its
# shards and still answer bit-identically. Finally a SIGTERMed worker must
# drain and log a clean shutdown.
cldir=$(mktemp -d)
clpids=()
cluster_cleanup() { kill "${clpids[@]}" 2>/dev/null || true; rm -rf "$cldir"; }
trap 'cleanup; cluster_cleanup' EXIT

awk 'BEGIN{srand(7); for(r=0;r<100000;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$cldir/train.csv"
awk 'BEGIN{srand(8); for(r=0;r<64;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$cldir/test.csv"

wait_addr() {
    local a=""
    for _ in $(seq 1 100); do
        a=$(sed -n 's/.*svserver listening on \(.*\)$/\1/p' "$1" | head -n1)
        [ -n "$a" ] && break
        sleep 0.1
    done
    if [ -z "$a" ]; then
        echo "svserver did not start:" >&2
        cat "$1" >&2
        exit 1
    fi
    printf '%s' "$a"
}

peers=""
worker_pids=()
for i in 1 2 3; do
    mkdir -p "$cldir/w$i"
    "$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$cldir/w$i" >"$cldir/w$i.log" 2>&1 &
    clpids+=($!)
    worker_pids+=($!)
done
for i in 1 2 3; do
    peers="$peers,http://$(wait_addr "$cldir/w$i.log")"
done
peers=${peers#,}
mkdir -p "$cldir/coord"
"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$cldir/coord" \
    -coordinator -peers "$peers" >"$cldir/coord.log" 2>&1 &
clpids+=($!)
caddr=$(wait_addr "$cldir/coord.log")

"$bindir/svcli" -train "$cldir/train.csv" -test "$cldir/test.csv" -k 5 -algo exact \
    >"$cldir/local5.csv"
"$bindir/svcli" -train "$cldir/train.csv" -test "$cldir/test.csv" -k 5 -algo exact \
    -peers "http://127.0.0.1:1,http://$caddr" -by-ref >"$cldir/cluster5.csv"
if ! cmp -s "$cldir/local5.csv" "$cldir/cluster5.csv"; then
    echo "cluster valuation differs from the in-process run:" >&2
    diff "$cldir/local5.csv" "$cldir/cluster5.csv" >&2 | head >&2
    exit 1
fi

"$bindir/svcli" -train "$cldir/train.csv" -test "$cldir/test.csv" -k 4 -algo exact \
    >"$cldir/local4.csv"
"$bindir/svcli" -train "$cldir/train.csv" -test "$cldir/test.csv" -k 4 -algo exact \
    -server "http://$caddr" -by-ref -async -poll 50ms >"$cldir/cluster4.csv" &
clipid=$!
sleep 0.4
kill -9 "${worker_pids[0]}"
if ! wait "$clipid"; then
    echo "cluster valuation failed after a worker was killed mid-job" >&2
    cat "$cldir/coord.log" >&2
    exit 1
fi
if ! cmp -s "$cldir/local4.csv" "$cldir/cluster4.csv"; then
    echo "post-kill cluster valuation differs from the in-process run" >&2
    exit 1
fi

kill -TERM "${worker_pids[1]}"
for _ in $(seq 1 100); do
    grep -q "shutdown complete" "$cldir/w2.log" && break
    sleep 0.1
done
if ! grep -q "shutdown complete" "$cldir/w2.log"; then
    echo "svserver did not drain cleanly on SIGTERM:" >&2
    cat "$cldir/w2.log" >&2
    exit 1
fi
cluster_cleanup
trap cleanup EXIT

# Crash-durability end-to-end: an async by-ref exact valuation is submitted
# to a real svserver, the process SIGKILLed mid-job, and a new process
# started on the same data dir. The restarted server must log the journal
# replay, re-run the job under its original ID, and "svcli -job" must fetch
# a result bit-identical to an uninterrupted local run (%g is
# shortest-round-trip formatting, so identical text means identical float64
# bits). SIGKILL, not SIGTERM: a graceful shutdown drains and journals jobs
# as canceled, so only a hard crash exercises replay.
jdir=$(mktemp -d)
jpid=""
journal_cleanup() { kill -9 "$jpid" 2>/dev/null || true; rm -rf "$jdir"; }
trap 'cleanup; journal_cleanup' EXIT
mkdir -p "$jdir/data"
awk 'BEGIN{srand(11); for(r=0;r<100000;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$jdir/train.csv"
awk 'BEGIN{srand(12); for(r=0;r<64;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$jdir/test.csv"
"$bindir/svcli" -train "$jdir/train.csv" -test "$jdir/test.csv" -k 5 -algo exact \
    >"$jdir/local.csv"

"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$jdir/data" >"$jdir/sv1.log" 2>&1 &
jpid=$!
jaddr=$(wait_addr "$jdir/sv1.log")
jobid=$("$bindir/svcli" -train "$jdir/train.csv" -test "$jdir/test.csv" -k 5 -algo exact \
    -server "http://$jaddr" -by-ref -async -submit-only)
sleep 0.4
kill -9 "$jpid"
wait "$jpid" 2>/dev/null || true

"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$jdir/data" >"$jdir/sv2.log" 2>&1 &
jpid=$!
jaddr=$(wait_addr "$jdir/sv2.log")
if ! grep -q "journal replay: 1 re-submitted" "$jdir/sv2.log"; then
    echo "restarted svserver did not replay the journaled job:" >&2
    cat "$jdir/sv2.log" >&2
    exit 1
fi
"$bindir/svcli" -job "$jobid" -server "http://$jaddr" -poll 50ms >"$jdir/restart.csv"
if ! cmp -s "$jdir/local.csv" "$jdir/restart.csv"; then
    echo "replayed job $jobid differs from the uninterrupted run:" >&2
    diff "$jdir/local.csv" "$jdir/restart.csv" | head >&2
    exit 1
fi
kill "$jpid"
journal_cleanup
trap cleanup EXIT

# Incremental delta end-to-end: upload a training set, value it by ref
# (one full scan builds the cached neighbor rankings), derive a child via
# "svcli delta -append", and re-value the child by ref. The child's values
# must be bit-identical to an in-process run over the concatenated CSV
# (%g round-trips float64 bits), and /metrics must show exactly one full
# scan and one O(ΔN) patch — a second full scan means the revaluation
# missed the incremental path.
ddir=$(mktemp -d)
dpid=""
delta_cleanup() { kill "$dpid" 2>/dev/null || true; rm -rf "$ddir"; }
trap 'cleanup; delta_cleanup' EXIT
mkdir -p "$ddir/data"
awk 'BEGIN{srand(21); for(r=0;r<20000;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$ddir/train.csv"
awk 'BEGIN{srand(22); for(r=0;r<10;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$ddir/extra.csv"
awk 'BEGIN{srand(23); for(r=0;r<16;r++){for(c=0;c<16;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$ddir/test.csv"
cat "$ddir/train.csv" "$ddir/extra.csv" >"$ddir/combined.csv"
"$bindir/svcli" -train "$ddir/combined.csv" -test "$ddir/test.csv" -k 5 -algo exact \
    >"$ddir/local.csv"

"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$ddir/data" >"$ddir/sv.log" 2>&1 &
dpid=$!
daddr=$(wait_addr "$ddir/sv.log")
tid=$("$bindir/svcli" upload -server "http://$daddr" -data "$ddir/train.csv")
"$bindir/svcli" -train-ref "$tid" -test "$ddir/test.csv" -k 5 -algo exact \
    -server "http://$daddr" >/dev/null
cid=$("$bindir/svcli" delta -server "http://$daddr" -id "$tid" -append "$ddir/extra.csv")
"$bindir/svcli" -train-ref "$cid" -test "$ddir/test.csv" -k 5 -algo exact \
    -server "http://$daddr" >"$ddir/delta.csv"
if ! cmp -s "$ddir/local.csv" "$ddir/delta.csv"; then
    echo "delta-derived valuation differs from the from-scratch run:" >&2
    diff "$ddir/local.csv" "$ddir/delta.csv" | head >&2
    exit 1
fi
metrics=$(curl -sf "http://$daddr/metrics")
for want in "svserver_incremental_fromscratch_total 1" "svserver_incremental_patches_total 1"; do
    if ! grep -q "^$want\$" <<<"$metrics"; then
        echo "delta E2E: expected \"$want\" in /metrics:" >&2
        grep "^svserver_incremental" <<<"$metrics" >&2
        exit 1
    fi
done
kill "$dpid"
delta_cleanup
trap cleanup EXIT

# Planner + index-store end-to-end: N=1e4 dim-4 data sits exactly on a
# calibration grid point where the cost model's verdict is unambiguous —
# truncated wins cold (a k-d build does not amortize over 16 test points),
# kd wins once its tree is persisted (reload ≈ 5% of the build). The host
# micro-probe rescales every estimate by one scalar, so the picks are
# machine-independent. The run drives: a cold algo=auto valuation
# (planner counts a truncated pick), an explicit kd index-build job via
# "svcli indexes -build" (a .knnsi artifact lands on disk), a server
# restart (the store recovers the artifact), a warm auto valuation (the
# planner flips to kd and the store's load counter proves the tree was
# reloaded, not rebuilt), and a dataset delete (the artifact is cascaded
# away).
pdir=$(mktemp -d)
ppid=""
planner_cleanup() { kill "$ppid" 2>/dev/null || true; rm -rf "$pdir"; }
trap 'cleanup; planner_cleanup' EXIT
mkdir -p "$pdir/data"
awk 'BEGIN{srand(31); for(r=0;r<10000;r++){for(c=0;c<4;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$pdir/train.csv"
awk 'BEGIN{srand(32); for(r=0;r<16;r++){for(c=0;c<4;c++)printf "%.6f,", rand()*2-1; print int(rand()*3)}}' >"$pdir/test.csv"

"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$pdir/data" >"$pdir/sv1.log" 2>&1 &
ppid=$!
paddr=$(wait_addr "$pdir/sv1.log")
tid=$("$bindir/svcli" upload -server "http://$paddr" -data "$pdir/train.csv")

"$bindir/svcli" -train-ref "$tid" -test "$pdir/test.csv" -k 5 -algo auto -eps 0.1 \
    -server "http://$paddr" >/dev/null
pmetrics=$(curl -sf "http://$paddr/metrics")
for want in 'svserver_planner_plans_total 1' 'svserver_planner_picks_total{method="truncated"} 1'; do
    if ! grep -qF "$want" <<<"$pmetrics"; then
        echo "planner E2E: expected \"$want\" in cold /metrics:" >&2
        grep "^svserver_planner" <<<"$pmetrics" >&2
        exit 1
    fi
done

iid=$("$bindir/svcli" indexes -server "http://$paddr" -build "$tid" -kind kd -k 5)
if ! "$bindir/svcli" indexes -server "http://$paddr" | grep -q "$iid"; then
    echo "planner E2E: built index $iid missing from the index list" >&2
    exit 1
fi
if ! ls "$pdir/data/indexes"/*.knnsi >/dev/null 2>&1; then
    echo "planner E2E: no .knnsi artifact on disk after the build job" >&2
    ls -la "$pdir/data/indexes" >&2 || true
    exit 1
fi

kill "$ppid"
wait "$ppid" 2>/dev/null || true
"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$pdir/data" >"$pdir/sv2.log" 2>&1 &
ppid=$!
paddr=$(wait_addr "$pdir/sv2.log")
if ! grep -q "recovered 1 persisted indexes" "$pdir/sv2.log"; then
    echo "planner E2E: restarted svserver did not recover the persisted index:" >&2
    cat "$pdir/sv2.log" >&2
    exit 1
fi
"$bindir/svcli" -train-ref "$tid" -test "$pdir/test.csv" -k 5 -algo auto -eps 0.1 \
    -server "http://$paddr" >/dev/null
pmetrics=$(curl -sf "http://$paddr/metrics")
if ! grep -qF 'svserver_planner_picks_total{method="kd"} 1' <<<"$pmetrics"; then
    echo "planner E2E: auto did not flip to kd with the persisted index:" >&2
    grep "^svserver_planner" <<<"$pmetrics" >&2
    exit 1
fi
if ! grep -E '^svserver_index_store_loads_total [1-9]' <<<"$pmetrics" >/dev/null; then
    echo "planner E2E: the warm kd run did not reload the persisted tree:" >&2
    grep "^svserver_index_store" <<<"$pmetrics" >&2
    exit 1
fi

curl -sf -X DELETE "http://$paddr/datasets/$tid" -o /dev/null
if ls "$pdir/data/indexes"/*.knnsi >/dev/null 2>&1; then
    echo "planner E2E: dataset delete left .knnsi artifacts behind:" >&2
    ls -la "$pdir/data/indexes" >&2
    exit 1
fi
kill "$ppid"
planner_cleanup
trap cleanup EXIT

# Perf smoke + regression gate: the machine-readable engine
# micro-benchmarks, capped at N=1e4 so the sweep stays seconds, diffed
# against the committed full-sweep baseline. -threshold 4 absorbs
# loaded-machine noise while still catching order-of-magnitude
# regressions; records under 10µs are reported but never enforced.
# Written OUTSIDE the repo (override with BENCH_SMOKE; CI uploads it as
# an artifact) so the committed BENCH_9.json trajectory point is never
# clobbered by smoke numbers — regenerate that one deliberately with:
#   go run ./cmd/svbench -benchjson BENCH_9.json
go run ./cmd/svbench -benchjson "${BENCH_SMOKE:-/tmp/BENCH_9.json}" -benchmax 10000 -compare BENCH_9.json -threshold 4
