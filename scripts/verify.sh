#!/usr/bin/env bash
# Tier-1 verification: formatting, vet (./... spans the library, commands
# and examples), build, tests, a race pass over the execution engine, and a
# race pass over the context-cancellation tests of the public API. Run from
# anywhere; operates on the repo root. CI (.github/workflows/ci.yml) runs
# exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core
go test -run TestCancel -race ./...
