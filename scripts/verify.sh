#!/usr/bin/env bash
# Tier-1 verification: formatting, vet (./... spans the library, commands
# and examples), build, tests, race passes over the execution engine, the
# job manager, the dataset registry and the context-cancellation paths,
# fuzz smoke runs over the decode/storage surfaces, a serving benchmark of
# the upload-once/value-many registry path, and a short svbench smoke
# emitting a BENCH_3.json snapshot (to $BENCH_SMOKE, default
# /tmp/BENCH_3.json).
# Run from anywhere; operates on the repo root. CI
# (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/core
go test -race ./internal/jobs
go test -race ./internal/registry
go test -run TestCancel -race ./...
go test -run 'TestJob|TestStatz|TestDataset|TestValueByRef|TestValueRef|TestQueuedCancel' -race ./cmd/svserver

# Fuzz smoke: ten seconds per decode/storage surface. New crashers land in
# testdata/fuzz/ and fail the run.
go test -run '^$' -fuzz FuzzFlatRoundTrip -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzBinaryCodec -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzDecodeValueRequest -fuzztime 10s ./cmd/svserver

# Serving smoke: the upload-once/value-many comparison through the real
# HTTP handlers (inline re-ships and re-fingerprints the payload each call;
# by-ref resolves two registry IDs).
go test -run '^$' -bench 'BenchmarkValue' -benchtime 3x ./cmd/svserver

# Perf smoke: the machine-readable engine micro-benchmarks, capped at
# N=1e4 so the sweep stays seconds. Written OUTSIDE the repo (override with
# BENCH_SMOKE; CI uploads it as an artifact) so the committed full-sweep
# BENCH_3.json trajectory point is never clobbered by smoke numbers —
# regenerate that one deliberately with:
#   go run ./cmd/svbench -benchjson BENCH_3.json
go run ./cmd/svbench -benchjson "${BENCH_SMOKE:-/tmp/BENCH_3.json}" -benchmax 10000
