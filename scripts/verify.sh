#!/usr/bin/env bash
# Tier-1 verification: formatting, vet (./... spans the library, commands
# and examples), build, tests (including the method-registry Validate
# tables, the Evaluate equivalence suite and the <1µs dispatch-overhead
# gate), race passes over the execution engine, the job manager, the
# dataset registry and the context-cancellation paths, a race pass over
# the distance/argsort kernels and their callers (vec, knn, kheap), a
# GOAMD64=v3 cross-build of the assembly, fuzz smoke runs over the
# decode/storage surfaces, a serving benchmark of the
# upload-once/value-many registry path, a method-discovery end-to-end run
# (a real svserver answering "svcli methods"), and a short svbench smoke
# (to $BENCH_SMOKE, default /tmp/BENCH_5.json) diffed against the
# committed BENCH_5.json baseline — records that got more than 4x slower
# fail the run.
# Run from anywhere; operates on the repo root. CI
# (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# The hand-written kernels must assemble and pass under the highest
# microarchitecture level too (VEX availability differs; the runtime AVX
# dispatch must not depend on GOAMD64).
GOAMD64=v3 go build ./...
go test ./...
go test -race ./internal/vec ./internal/knn ./internal/kheap
go test -race ./internal/core
go test -race ./internal/jobs
go test -race ./internal/registry
go test -run TestCancel -race ./...
go test -run 'TestJob|TestStatz|TestDataset|TestValueByRef|TestValueRef|TestQueuedCancel|TestMethods' -race ./cmd/svserver
go test -run 'TestEvaluate|TestParams' -race .

# Fuzz smoke: ten seconds per decode/storage surface. New crashers land in
# testdata/fuzz/ and fail the run.
go test -run '^$' -fuzz FuzzFlatRoundTrip -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzBinaryCodec -fuzztime 10s ./internal/dataset
go test -run '^$' -fuzz FuzzDecodeValueRequest -fuzztime 10s ./cmd/svserver

# Serving smoke: the upload-once/value-many comparison through the real
# HTTP handlers (inline re-ships and re-fingerprints the payload each call;
# by-ref resolves two registry IDs).
go test -run '^$' -bench 'BenchmarkValue' -benchtime 3x ./cmd/svserver

# Method discovery end-to-end: a real svserver process on an ephemeral
# port, interrogated by "svcli methods" — the declarative surface a client
# sees, checked for every built-in algorithm.
bindir=$(mktemp -d)
logfile="$bindir/svserver.log"
mkdir -p "$bindir/data"
go build -o "$bindir" ./cmd/svserver ./cmd/svcli
"$bindir/svserver" -addr 127.0.0.1:0 -data-dir "$bindir/data" >"$logfile" 2>&1 &
svpid=$!
cleanup() { kill "$svpid" 2>/dev/null || true; rm -rf "$bindir"; }
trap cleanup EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*svserver listening on \(.*\)$/\1/p' "$logfile" | head -n1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "svserver did not start:" >&2
    cat "$logfile" >&2
    exit 1
fi
methods_out=$("$bindir/svcli" methods -server "http://$addr")
for name in exact truncated montecarlo baseline sellers sellersmc composite lsh kd utility; do
    # Herestring, not a pipe: grep -q exiting on an early match would
    # SIGPIPE the writer and trip pipefail.
    if ! grep -q "^$name " <<<"$methods_out"; then
        echo "svcli methods: method $name missing from GET /methods output:" >&2
        printf '%s\n' "$methods_out" >&2
        exit 1
    fi
done
kill "$svpid"

# Perf smoke + regression gate: the machine-readable engine
# micro-benchmarks, capped at N=1e4 so the sweep stays seconds, diffed
# against the committed full-sweep baseline. -threshold 4 absorbs
# loaded-machine noise while still catching order-of-magnitude
# regressions; records under 10µs are reported but never enforced.
# Written OUTSIDE the repo (override with BENCH_SMOKE; CI uploads it as
# an artifact) so the committed BENCH_5.json trajectory point is never
# clobbered by smoke numbers — regenerate that one deliberately with:
#   go run ./cmd/svbench -benchjson BENCH_5.json
go run ./cmd/svbench -benchjson "${BENCH_SMOKE:-/tmp/BENCH_5.json}" -benchmax 10000 -compare BENCH_5.json -threshold 4
