//go:build !race

package knnshapley

// raceEnabled reports whether this test binary was built with -race, so
// wall-clock performance gates can skip instead of flaking on the
// instrumentation overhead.
const raceEnabled = false
