// Upload-once, value-many: the content-addressed dataset registry behind
// cmd/svserver's POST /datasets, shown in-process. Datasets are stored once
// under their content fingerprint — a compact binary file on disk plus a
// byte-budget LRU of decoded payloads in memory — and every later valuation
// references them by ID: no re-shipping, no re-validating, no
// re-fingerprinting. The job manager keys its result cache and its Valuer
// sessions on those same IDs, so the serving hot path is two map lookups.
// Refcounting makes deletion safe: a dataset deleted mid-job vanishes from
// the registry immediately but its bytes outlive the jobs that pinned it.
//
// Run with: go run ./examples/registry
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	knnshapley "knnshapley"
	"knnshapley/internal/jobs"
	"knnshapley/internal/registry"
)

func main() {
	dir, err := os.MkdirTemp("", "registry-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A registry with a deliberately tiny memory budget, so the second
	// dataset evicts the first and a later Get has to reload it from disk.
	reg, err := registry.New(registry.Config{Dir: dir, MemBudget: 6 << 20})
	if err != nil {
		log.Fatal(err)
	}
	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()

	// Upload once. Put validates, flattens, fingerprints and persists; the
	// returned handle pins the dataset while we hold it.
	train := knnshapley.SynthMNIST(10000, 1)
	test := knnshapley.SynthMNIST(128, 2)
	trainH, created, err := reg.Put(train)
	if err != nil {
		log.Fatal(err)
	}
	testH, _, err := reg.Put(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded train as %s (created=%v), test as %s\n",
		trainH.ID(), created, testH.ID())

	// Re-uploading identical content is an idempotent hit — same ID, no new
	// bytes stored. This is what makes POST /datasets safe to retry.
	dup, created, err := reg.Put(knnshapley.SynthMNIST(10000, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-upload: %s created=%v\n", dup.ID(), created)
	dup.Release()

	// Value many: every request carries only the two IDs. The Valuer
	// session and the result cache are keyed on them directly.
	valueByRef := func(trainID, testID string) *knnshapley.Report {
		th, err := reg.Get(trainID)
		if err != nil {
			log.Fatal(err)
		}
		eh, err := reg.Get(testID)
		if err != nil {
			log.Fatal(err)
		}
		v, err := mgr.Valuer(trainID+"|k=5", func() (*knnshapley.Valuer, error) {
			return knnshapley.New(th.Dataset(), knnshapley.WithK(5))
		})
		if err != nil {
			log.Fatal(err)
		}
		testSet := eh.Dataset()
		job, err := mgr.Submit(jobs.Spec{
			CacheKey:   trainID + "|" + testID + "|exact|k=5",
			TotalUnits: testSet.N(),
			Run: func(ctx context.Context) (*knnshapley.Report, error) {
				return v.Exact(ctx, testSet)
			},
			// The job pins both datasets until it terminates — the hook
			// cmd/svserver uses so DELETE /datasets cannot starve a run.
			OnFinish: func() { th.Release(); eh.Release() },
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mgr.Wait(context.Background(), job)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	first := valueByRef(trainH.ID(), testH.ID())
	for i := 0; i < 4; i++ {
		again := valueByRef(trainH.ID(), testH.ID())
		for j := range first.Values {
			if again.Values[j] != first.Values[j] {
				log.Fatalf("value %d drifted across by-ref calls", j)
			}
		}
	}
	ms := mgr.Stats()
	fmt.Printf("5 by-ref valuations: engine ran %d time(s), %d cache hits, %d session build(s)\n",
		ms.Runs, ms.CacheHits, ms.ValuerBuilds)

	// Memory pressure: a second large dataset blows the byte budget, the
	// LRU spills the colder payload to its disk file, and the next Get
	// reloads it transparently.
	big, _, err := reg.Put(knnshapley.SynthMNIST(12000, 3))
	if err != nil {
		log.Fatal(err)
	}
	big.Release()
	rs := reg.Stats()
	fmt.Printf("after a third dataset: %d stored, %d resident, %d KiB in memory (budget %d KiB), %d eviction(s)\n",
		rs.Datasets, rs.Resident, rs.MemBytes>>10, rs.MemBudget>>10, rs.Evictions)
	reload, err := reg.Get(trainH.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %s from disk: %d rows intact (loads=%d)\n",
		reload.ID(), reload.Dataset().N(), reg.Stats().Loads)
	reload.Release()

	// Deletion under load: the registry forgets the dataset at once, but
	// the bytes survive until the last handle lets go.
	still, err := reg.Get(testH.ID())
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Delete(testH.ID()); err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Get(testH.ID()); err == nil {
		log.Fatal("deleted dataset still visible")
	}
	fmt.Printf("deleted %s while held: %d rows still readable through the handle\n",
		still.ID(), still.Dataset().N())
	still.Release()
	testH.Release()
	trainH.Release()

	rs = reg.Stats()
	fmt.Printf("final: %d dataset(s), hits=%d misses=%d evictions=%d\n",
		rs.Datasets, rs.Hits, rs.Misses, rs.Evictions)
}
