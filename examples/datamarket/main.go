// Data market: multiple hospitals (sellers) each contribute a batch of
// patient records; a buyer pays for a KNN model trained on the pooled data,
// and an analyst provides the computation. This example prices every
// participant with the seller-level game (Theorem 8) and the composite game
// (Theorems 9/12) through one valuation session, mirroring the
// clinical-trial scenario of the paper's introduction.
//
// Run with: go run ./examples/datamarket
package main

import (
	"context"
	"fmt"
	"log"

	knnshapley "knnshapley"
)

func main() {
	const sellers = 8
	train := knnshapley.SynthMNIST(400, 1)
	test := knnshapley.SynthMNIST(60, 2)
	owners := knnshapley.AssignSellers(train.N(), sellers)

	// One session values the data-only game, the composite game and the
	// utility audit without re-validating the training set.
	valuer, err := knnshapley.New(train, knnshapley.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Data-only game: split the revenue among the hospitals.
	sellerRep, err := valuer.Sellers(ctx, test, owners, sellers)
	if err != nil {
		log.Fatal(err)
	}
	sellerSV := sellerRep.Values

	all := make([]int, train.N())
	for i := range all {
		all[i] = i
	}
	utility, err := valuer.Utility(ctx, test, all)
	if err != nil {
		log.Fatal(err)
	}

	const revenue = 10000.0 // dollars paid by the buyer
	payments := knnshapley.Monetize(sellerSV, revenue/utility, 0)
	fmt.Printf("model utility ν(I) = %.4f, buyer pays $%.0f\n\n", utility, revenue)
	fmt.Println("data-only game (hospitals split everything):")
	for j, p := range payments {
		fmt.Printf("  hospital %d: value %.5f -> $%8.2f\n", j, sellerSV[j], p)
	}

	// Composite game: the analyst is a player too and takes the lion's
	// share (Eq. 88/89 show each seller keeps at most half its data-only
	// differences).
	comp, err := valuer.Composite(ctx, test, owners, sellers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncomposite game (analyst valued alongside hospitals):")
	scale := revenue / utility
	fmt.Printf("  analyst:    value %.5f -> $%8.2f\n", comp.Analyst, comp.Analyst*scale)
	for j, v := range comp.Values {
		fmt.Printf("  hospital %d: value %.5f -> $%8.2f\n", j, v, v*scale)
	}

	var sellerTotal float64
	for _, v := range comp.Values {
		sellerTotal += v
	}
	fmt.Printf("\nanalyst share: %.1f%% of the total utility\n",
		100*comp.Analyst/(comp.Analyst+sellerTotal))
}
