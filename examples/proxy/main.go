// Proxy valuation: Section 7 argues the KNN Shapley value is a practical
// surrogate for the Shapley value of models without efficient exact
// algorithms. This example values the same training set (an Iris stand-in
// with a few corrupted labels) under (a) a logistic-regression utility via
// generic permutation sampling with full retraining — the expensive route —
// and (b) the exact KNN Shapley in milliseconds, then compares the two
// rankings.
//
// Run with: go run ./examples/proxy
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	knnshapley "knnshapley"
	"knnshapley/internal/game"
	"knnshapley/internal/logreg"
	"knnshapley/internal/stats"
)

func main() {
	train := knnshapley.SynthIris(90, 1)
	test := knnshapley.SynthIris(45, 2)
	rng := rand.New(rand.NewPCG(7, 7))
	train.FlipLabels(0.15, rng)

	// (a) Logistic-regression Shapley values: Monte-Carlo permutations with
	// a full retrain per prefix (the only generic option).
	lrUtility := game.Func{Players: train.N(), F: func(s []int) float64 {
		if len(s) == 0 {
			return 0
		}
		sub := train.Subset(s)
		sub.Classes = train.Classes
		m, err := logreg.Train(sub, logreg.Config{Epochs: 12, Seed: 3})
		if err != nil {
			return 0
		}
		return m.Accuracy(test)
	}}
	start := time.Now()
	lrSV := game.MonteCarloShapley(lrUtility, 400, rng)
	lrTime := time.Since(start)

	// (b) Exact KNN Shapley values through the session API.
	valuer, err := knnshapley.New(train, knnshapley.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := valuer.Exact(context.Background(), test)
	if err != nil {
		log.Fatal(err)
	}
	knnSV, knnTime := rep.Values, rep.Duration

	fmt.Printf("logistic-regression SV: %d retraining permutations in %v\n", 400, lrTime.Round(time.Millisecond))
	fmt.Printf("KNN SV (exact):         %v\n\n", knnTime.Round(time.Microsecond))
	fmt.Printf("pearson  = %.3f\n", stats.Pearson(knnSV, lrSV))
	fmt.Printf("spearman = %.3f\n", stats.Spearman(knnSV, lrSV))

	bottom := func(sv []float64, k int) map[int]bool {
		set := map[int]bool{}
		for _, i := range knnshapley.BottomIndices(sv, k) {
			set[i] = true
		}
		return set
	}
	a, b := bottom(knnSV, 15), bottom(lrSV, 15)
	overlap := 0
	for i := range a {
		if b[i] {
			overlap++
		}
	}
	fmt.Printf("bottom-15 (most harmful) overlap: %d/15\n", overlap)
	fmt.Printf("speed-up of the KNN surrogate: ×%.0f\n", float64(lrTime)/float64(knnTime))
}
