// Job-queue valuation: the serving pattern behind cmd/svserver, shown
// in-process. A bounded-worker job manager (internal/jobs) runs valuations
// as cancellable background jobs with live progress — test points processed,
// fed by the engine's per-batch callback — and remembers results in an LRU
// cache keyed by content fingerprints, so an identical resubmission is
// answered without touching the engine. This is the systems half of the
// paper's pitch: once KNN-Shapley is cheap enough to serve interactively
// (Theorem 1's O(N log N)), a daemon still needs job states, cancellation
// and a memory of what it already computed to absorb concurrent traffic.
//
// Run with: go run ./examples/jobqueue
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	knnshapley "knnshapley"
	"knnshapley/internal/jobs"
)

func main() {
	train := knnshapley.SynthMNIST(20000, 1)
	test := knnshapley.SynthMNIST(256, 2)

	mgr := jobs.New(jobs.Config{Workers: 2})
	defer mgr.Close()

	// The manager also caches sessions by training-set fingerprint, so
	// concurrent requests over the same payload validate and flatten it
	// exactly once (and would share lazily built LSH/k-d indexes).
	key := fmt.Sprintf("%016x|k=5", train.Fingerprint())
	valuer, err := mgr.Valuer(key, func() (*knnshapley.Valuer, error) {
		return knnshapley.New(train, knnshapley.WithK(5))
	})
	if err != nil {
		log.Fatal(err)
	}

	spec := jobs.Spec{
		// Everything that shapes the values goes into the cache key.
		CacheKey:   fmt.Sprintf("%016x|%016x|exact|k=5", train.Fingerprint(), test.Fingerprint()),
		TotalUnits: test.N(),
		// The job context already carries the progress hook; handing it to
		// the Valuer is all that is needed for progress to flow.
		Run: func(ctx context.Context) (*knnshapley.Report, error) {
			return valuer.Exact(ctx, test)
		},
	}

	// 1. Submit and watch the lifecycle: queued → running → done, with
	// progress ticking up as engine batches complete.
	job, err := mgr.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s submitted (N=%d, %d test points)\n", job.ID(), train.N(), test.N())
	poll := time.NewTimer(150 * time.Millisecond) // reused across iterations, not a fresh time.After per tick
	defer poll.Stop()
	for done := false; !done; {
		select {
		case <-job.Done():
			done = true
		case <-poll.C:
			poll.Reset(150 * time.Millisecond)
		}
		s := job.Snapshot()
		fmt.Printf("  %-8s %3d/%3d test points\n", s.State, s.Done, s.Total)
	}
	rep, err := job.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v: Σsv = %.4f (= ν(D) − ν(∅)), fingerprint %016x\n\n",
		rep.Duration.Round(time.Millisecond), sum(rep.Values), rep.Fingerprint)

	// 2. Resubmit the identical request: answered from the result cache,
	// born done, no engine run.
	again, err := mgr.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	s := again.Snapshot()
	fmt.Printf("resubmission %s: state=%s cacheHit=%v (no recomputation)\n\n", again.ID(), s.State, s.CacheHit)

	// 3. Cancel a job mid-run: the engine observes the canceled context
	// within one batch and the worker is released.
	big := knnshapley.SynthMNIST(4096, 3)
	slow, err := mgr.Submit(jobs.Spec{
		TotalUnits: big.N(),
		Run: func(ctx context.Context) (*knnshapley.Report, error) {
			return valuer.MonteCarlo(ctx, big, knnshapley.MCOptions{
				Bound: knnshapley.Fixed, T: 1 << 20, Seed: 7, // far beyond any budget we'd wait for
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it start grinding
	start := time.Now()
	mgr.Cancel(slow.ID())
	<-slow.Done()
	fmt.Printf("canceled %s while %s: stopped in %v\n",
		slow.ID(), jobs.StateRunning, time.Since(start).Round(time.Millisecond))

	st := mgr.Stats()
	fmt.Printf("\nmanager: runs=%d cacheHits=%d valuerBuilds=%d retainedJobs=%d\n",
		st.Runs, st.CacheHits, st.ValuerBuilds, st.Jobs)
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
