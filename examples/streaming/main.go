// Streaming valuation via the delta API: sellers join a long-running data
// market in mini-batches (the arrival stream of Section 1's marketplace
// setting) and every seller's Shapley value is refreshed after each arrival.
// Re-valuing from scratch would pay the full O(Ntest·N·d) distance scan per
// batch; instead each batch is applied as a versioned dataset delta
// (registry.ApplyDelta records the lineage edge) and the incremental
// evaluator scans only the ΔN new points, merges them into the cached
// neighbor rankings, and replays the KNN-Shapley recurrence — O(ΔN·d + N)
// per revaluation, bit-identical to a from-scratch run (checked at the end).
//
// This is the in-process shape of what cmd/svserver serves over HTTP as
// PUT /datasets/{id}/delta followed by a by-ref valuation of the child ID.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	knnshapley "knnshapley"
	"knnshapley/internal/cluster"
	"knnshapley/internal/registry"
)

func main() {
	base := knnshapley.SynthDeep(20000, 1)
	queries := knnshapley.SynthDeep(100, 2)
	const k = 2
	const batch = 10 // sellers per arrival
	const rounds = 8

	reg, err := registry.New(registry.Config{})
	if err != nil {
		log.Fatal(err)
	}
	bh, _, err := reg.Put(base)
	if err != nil {
		log.Fatal(err)
	}
	qh, _, err := reg.Put(queries)
	if err != nil {
		log.Fatal(err)
	}
	inc := cluster.NewIncremental(cluster.NewRankCache(0), reg)
	ctx := context.Background()

	// Open the market: one full scan builds the neighbor-rank cache entry
	// every later arrival patches against.
	req := cluster.Request{
		Train: bh.Dataset(), Test: qh.Dataset(),
		TrainID: bh.ID(), TestID: qh.ID(),
		Method: "exact", K: k,
	}
	start := time.Now()
	prev, err := inc.Values(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fullScan := time.Since(start)
	fmt.Printf("market open: %d sellers valued from scratch in %v\n",
		base.N(), fullScan.Round(time.Millisecond))

	// Stream arrivals: each batch is a delta append, and the revaluation
	// rides the O(ΔN) patch path off the previous version's cached ranking.
	cur := bh
	var patchTotal time.Duration
	for r := 0; r < rounds; r++ {
		arrivals := knnshapley.SynthDeep(batch, uint64(100+r))
		child, lin, _, err := reg.ApplyDelta(cur.ID(), registry.Delta{Append: arrivals})
		if err != nil {
			log.Fatal(err)
		}
		creq := req
		creq.Train, creq.TrainID = child.Dataset(), child.ID()
		t := time.Now()
		vals, err := inc.Values(ctx, creq)
		if err != nil {
			log.Fatal(err)
		}
		patch := time.Since(t)
		patchTotal += patch

		// Value drift among incumbents, and what the newcomers captured.
		var drift, newcomers float64
		for j, v := range vals[:len(prev)] {
			drift = math.Max(drift, math.Abs(v-prev[j]))
		}
		for _, v := range vals[len(prev):] {
			newcomers += v
		}
		fmt.Printf("  +%2d sellers → %d (version %s…): revalued in %v, "+
			"max incumbent drift %.5f, newcomers Σv %.4f\n",
			lin.Appended, child.Dataset().N(), child.ID()[:8],
			patch.Round(time.Microsecond), drift, newcomers)

		prev = vals
		cur.Release()
		cur = child
	}
	defer cur.Release()

	// The contract that makes the shortcut safe: the incremental values are
	// bit-identical to valuing the final market from scratch.
	exact, err := knnshapley.Exact(cur.Dataset(), queries, knnshapley.Config{K: k})
	if err != nil {
		log.Fatal(err)
	}
	for j := range exact {
		if math.Float64bits(exact[j]) != math.Float64bits(prev[j]) {
			log.Fatalf("value %d diverged: %v != %v", j, exact[j], prev[j])
		}
	}
	st := inc.Stats()
	perPatch := patchTotal / rounds
	fmt.Printf("bit-identical to from-scratch over %d sellers ✓ "+
		"(%d full scan, %d patches)\n", cur.Dataset().N(), st.FromScratch, st.Patches)
	fmt.Printf("%v per arrival vs %v from scratch — ×%.0f\n",
		perPatch.Round(time.Microsecond), fullScan.Round(time.Millisecond),
		float64(fullScan)/float64(perPatch))
}
