// Streaming valuation: test queries arrive one at a time (the document-
// retrieval scenario of Section 1/C1.2) and each training point's value is
// updated on the fly. Sorting the full training set per query would be too
// slow, so the LSH valuer retrieves only the K* = max{K, ⌈1/ε⌉} nearest
// neighbors per query (Theorems 2–4).
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	knnshapley "knnshapley"
)

func main() {
	train := knnshapley.SynthDeep(20000, 1)
	queries := knnshapley.SynthDeep(100, 2)

	cfg := knnshapley.Config{K: 2}
	const eps, delta = 0.1, 0.1
	start := time.Now()
	valuer, err := knnshapley.NewLSHValuer(train, cfg, eps, delta, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points in %v (K* = %d, estimated contrast %.3f)\n",
		train.N(), time.Since(start).Round(time.Millisecond), valuer.KStar(), valuer.EstimatedContrast())

	// Stream the queries, accumulating values as they arrive.
	acc := make([]float64, train.N())
	start = time.Now()
	for i := range queries.X {
		sv := valuer.ValueOne(queries.X[i], queries.Labels[i])
		for j, v := range sv {
			acc[j] += v
		}
	}
	perQuery := time.Since(start) / time.Duration(len(queries.X))
	for j := range acc {
		acc[j] /= float64(len(queries.X))
	}
	fmt.Printf("valued %d streaming queries, %v per query\n", len(queries.X), perQuery.Round(time.Microsecond))

	// Compare against the exact (full-sort) values on the same stream.
	start = time.Now()
	exact, err := knnshapley.Exact(train, queries, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start) / time.Duration(len(queries.X))
	var maxErr float64
	for j := range acc {
		if d := acc[j] - exact[j]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("exact valuation: %v per query\n", exactTime.Round(time.Microsecond))
	fmt.Printf("max |ŝ−s| = %.4f (ε budget %.2f), speed-up ×%.1f\n",
		maxErr, eps, float64(exactTime)/float64(perQuery))
}
