// Streaming valuation: test queries arrive in mini-batches (the document-
// retrieval scenario of Section 1/C1.2) and each training point's value is
// updated on the fly. Sorting the full training set per query would be too
// slow, so the session's LSH backend retrieves only the K* = max{K, ⌈1/ε⌉}
// nearest neighbors per query (Theorems 2–4). The expensive part — tuning
// and building the index — happens once, on the first LSH call; every later
// batch reuses the session's cached index.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	knnshapley "knnshapley"
)

func main() {
	train := knnshapley.SynthDeep(20000, 1)
	queries := knnshapley.SynthDeep(100, 2)

	valuer, err := knnshapley.New(train, knnshapley.WithK(2))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const eps, delta = 0.1, 0.1
	const seed = 42
	const batch = 10

	// Stream the queries in arrival-order mini-batches, accumulating values.
	// The first call pays for index construction; the rest ride the cache.
	acc := make([]float64, train.N())
	start := time.Now()
	var indexTime time.Duration
	for lo := 0; lo < queries.N(); lo += batch {
		hi := min(lo+batch, queries.N())
		part := queries.Subset(rangeInts(lo, hi))
		rep, err := valuer.LSH(ctx, part, eps, delta, seed)
		if err != nil {
			log.Fatal(err)
		}
		if lo == 0 {
			indexTime = rep.Duration
			fmt.Printf("first batch (incl. index build over %d points): %v (K* = %d)\n",
				train.N(), rep.Duration.Round(time.Millisecond), rep.KStar)
		}
		for j, v := range rep.Values {
			acc[j] += v * float64(hi-lo)
		}
	}
	perQuery := (time.Since(start) - indexTime) / time.Duration(queries.N())
	for j := range acc {
		acc[j] /= float64(queries.N())
	}
	fmt.Printf("valued %d streaming queries, %v per query after the first batch\n",
		queries.N(), perQuery.Round(time.Microsecond))

	// Compare against the exact (full-sort) values on the same stream.
	exactRep, err := valuer.Exact(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	exact := exactRep.Values
	exactTime := exactRep.Duration / time.Duration(queries.N())
	var maxErr float64
	for j := range acc {
		if d := acc[j] - exact[j]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("exact valuation: %v per query\n", exactTime.Round(time.Microsecond))
	fmt.Printf("max |ŝ−s| = %.4f (ε budget %.2f), speed-up ×%.1f\n",
		maxErr, eps, float64(exactTime)/float64(perQuery))
}

// rangeInts returns the indices lo..hi-1.
func rangeInts(lo, hi int) []int {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}
