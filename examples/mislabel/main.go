// Mislabel detection: corrupt a fraction of the training labels and show
// that the lowest Shapley values flag the corrupted points — the
// data-debugging use case that motivates task-specific valuation (Section 7:
// "bad training points naturally have low SVs").
//
// Run with: go run ./examples/mislabel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	knnshapley "knnshapley"
)

func main() {
	train := knnshapley.SynthCIFAR10(1000, 1)
	test := knnshapley.SynthCIFAR10(200, 2)

	// Corrupt 10% of the labels.
	rng := rand.New(rand.NewPCG(7, 7))
	flipped := train.FlipLabels(0.10, rng)
	isFlipped := make(map[int]bool, len(flipped))
	for _, i := range flipped {
		isFlipped[i] = true
	}
	fmt.Printf("corrupted %d of %d training labels\n", len(flipped), train.N())

	valuer, err := knnshapley.New(train, knnshapley.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := valuer.Exact(context.Background(), test)
	if err != nil {
		log.Fatal(err)
	}
	sv := rep.Values

	// Rank points by ascending value and measure how many corrupted points
	// appear in each low-value prefix.
	idx := knnshapley.BottomIndices(sv, len(sv))

	fmt.Println("\nfraction of corrupted labels found when inspecting the")
	fmt.Println("lowest-valued x% of the training set (random baseline = x%):")
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.30} {
		cut := int(frac * float64(len(idx)))
		found := 0
		for _, i := range idx[:cut] {
			if isFlipped[i] {
				found++
			}
		}
		fmt.Printf("  inspect %3.0f%% -> recall %5.1f%% (precision %4.1f%%)\n",
			frac*100,
			100*float64(found)/float64(len(flipped)),
			100*float64(found)/float64(cut))
	}
}
