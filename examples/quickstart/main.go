// Quickstart: build a valuation session, compute exact KNN Shapley values
// for a small training set and inspect the most and least valuable points.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	knnshapley "knnshapley"
)

func main() {
	// A synthetic stand-in for MNIST deep features: 500 training points,
	// 50 test queries, 10 classes.
	train := knnshapley.SynthMNIST(500, 1)
	test := knnshapley.SynthMNIST(50, 2)

	// One session per training set: the data is validated and packed into
	// row-major storage here, once, and reused by every valuation call.
	valuer, err := knnshapley.New(train, knnshapley.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Every algorithm routes through one declarative entry point: name a
	// registered method (or hand over its typed params — here the exact
	// method, which has none) and Evaluate runs it. valuer.Exact(ctx, test)
	// is the equivalent convenience wrapper.
	rep, err := valuer.Evaluate(ctx, knnshapley.Request{Method: "exact", Test: test})
	if err != nil {
		log.Fatal(err)
	}
	sv := rep.Values

	// The registry is introspectable: every method describes its own
	// parameters ("svcli methods" and the server's GET /methods render
	// exactly this).
	fmt.Print("registered methods:")
	for _, name := range knnshapley.MethodNames() {
		fmt.Print(" ", name)
	}
	fmt.Println()

	// Group rationality audit: values must sum to ν(I) − ν(∅).
	all := make([]int, train.N())
	for i := range all {
		all[i] = i
	}
	full, err := valuer.Utility(ctx, test, all)
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, v := range sv {
		total += v
	}
	fmt.Printf("training points: %d   test queries: %d   K: %d   (%s in %v)\n",
		train.N(), test.N(), valuer.K(), rep.Method, rep.Duration.Round(time.Millisecond))
	fmt.Printf("model utility ν(I) = %.4f   Σ Shapley values = %.4f\n", full, total)

	idx := knnshapley.TopIndices(sv, len(sv))

	fmt.Println("\nmost valuable training points:")
	for _, i := range idx[:5] {
		fmt.Printf("  point %3d (class %d): %+.6f\n", i, train.Labels[i], sv[i])
	}
	fmt.Println("least valuable training points:")
	for _, i := range idx[len(idx)-5:] {
		fmt.Printf("  point %3d (class %d): %+.6f\n", i, train.Labels[i], sv[i])
	}

	// Convert the relative values into payments for a $1000 training job.
	payments := knnshapley.Monetize(sv, 1000/full, 0)
	fmt.Printf("\ntop point's share of a $1000 payment: $%.2f\n", payments[idx[0]])
}
