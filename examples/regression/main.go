// KNN regression valuation: value training points for an unweighted KNN
// regressor (Theorem 6) and compare with the weighted variant priced by the
// improved Monte-Carlo estimator (Algorithm 2), since exact weighted
// valuation costs N^K.
//
// Run with: go run ./examples/regression
package main

import (
	"fmt"
	"log"
	"sort"

	knnshapley "knnshapley"
)

func main() {
	train := knnshapley.SynthRegression(300, 6, 0.2, 1)
	test := knnshapley.SynthRegression(40, 6, 0.2, 2)

	// Exact values for the unweighted KNN regressor (negative-MSE utility).
	sv, err := knnshapley.Exact(train, test, knnshapley.Config{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	idx := make([]int, len(sv))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sv[idx[a]] > sv[idx[b]] })
	fmt.Println("unweighted KNN regression (exact, Theorem 6):")
	fmt.Printf("  best  point %3d: %+.6f (target %+.3f)\n", idx[0], sv[idx[0]], train.Targets[idx[0]])
	fmt.Printf("  worst point %3d: %+.6f (target %+.3f)\n",
		idx[len(idx)-1], sv[idx[len(idx)-1]], train.Targets[idx[len(idx)-1]])

	// Weighted KNN regression: exact would cost ~N^K utility evaluations.
	cost := knnshapley.EstimateWeightedCost(train.N(), 5)
	fmt.Printf("\nweighted KNN: exact counting cost ≈ %.2g utility evals -> using Monte Carlo\n", cost)
	cfgW := knnshapley.Config{K: 5, Weight: knnshapley.InverseDistance(0.5)}
	rep, err := knnshapley.MonteCarlo(train, test, cfgW, knnshapley.MCOptions{
		Eps: 0.05, Delta: 0.1, Bound: knnshapley.Bennett,
		RangeHalfWidth: 2, Heuristic: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran %d of %d budgeted permutations (%d incremental utility updates)\n",
		rep.Permutations, rep.Budget, rep.UtilityEvals)

	// The two utilities should broadly agree on which points matter.
	var agree int
	top := map[int]bool{}
	for _, i := range idx[:30] {
		top[i] = true
	}
	wIdx := make([]int, len(rep.SV))
	for i := range wIdx {
		wIdx[i] = i
	}
	sort.Slice(wIdx, func(a, b int) bool { return rep.SV[wIdx[a]] > rep.SV[wIdx[b]] })
	for _, i := range wIdx[:30] {
		if top[i] {
			agree++
		}
	}
	fmt.Printf("  top-30 overlap between unweighted and weighted values: %d/30\n", agree)
}
