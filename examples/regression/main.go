// KNN regression valuation: value training points for an unweighted KNN
// regressor (Theorem 6) and compare with the weighted variant priced by the
// improved Monte-Carlo estimator (Algorithm 2), since exact weighted
// valuation costs N^K.
//
// Run with: go run ./examples/regression
package main

import (
	"context"
	"fmt"
	"log"

	knnshapley "knnshapley"
)

func main() {
	train := knnshapley.SynthRegression(300, 6, 0.2, 1)
	test := knnshapley.SynthRegression(40, 6, 0.2, 2)

	ctx := context.Background()

	// Exact values for the unweighted KNN regressor (negative-MSE utility).
	valuer, err := knnshapley.New(train, knnshapley.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := valuer.Exact(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	sv := rep.Values
	idx := knnshapley.TopIndices(sv, len(sv))
	fmt.Println("unweighted KNN regression (exact, Theorem 6):")
	fmt.Printf("  best  point %3d: %+.6f (target %+.3f)\n", idx[0], sv[idx[0]], train.Targets[idx[0]])
	fmt.Printf("  worst point %3d: %+.6f (target %+.3f)\n",
		idx[len(idx)-1], sv[idx[len(idx)-1]], train.Targets[idx[len(idx)-1]])

	// Weighted KNN regression: exact would cost ~N^K utility evaluations.
	cost := knnshapley.EstimateWeightedCost(train.N(), 5)
	fmt.Printf("\nweighted KNN: exact counting cost ≈ %.2g utility evals -> using Monte Carlo\n", cost)
	weighted, err := knnshapley.New(train, knnshapley.WithK(5),
		knnshapley.WithWeight(knnshapley.InverseDistance(0.5)))
	if err != nil {
		log.Fatal(err)
	}
	wrep, err := weighted.MonteCarlo(ctx, test, knnshapley.MCOptions{
		Eps: 0.05, Delta: 0.1, Bound: knnshapley.Bennett,
		RangeHalfWidth: 2, Heuristic: true, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ran %d of %d budgeted permutations (%d incremental utility updates)\n",
		wrep.Permutations, wrep.Budget, wrep.UtilityEvals)

	// The two utilities should broadly agree on which points matter.
	var agree int
	top := map[int]bool{}
	for _, i := range idx[:30] {
		top[i] = true
	}
	for _, i := range knnshapley.TopIndices(wrep.Values, 30) {
		if top[i] {
			agree++
		}
	}
	fmt.Printf("  top-30 overlap between unweighted and weighted values: %d/30\n", agree)
}
