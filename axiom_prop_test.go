package knnshapley

// Property-based checks of the Shapley axioms on the public API: for random
// small datasets, the reported values must satisfy efficiency (they sum to
// ν(D) − ν(∅) — "group rationality" in the paper's Section 2.1), symmetry
// (identical training points receive identical values) and the null-player
// intuition (a point that is never among any test point's K* neighbors is
// worth (almost) nothing). internal/core has kernel-level axiom tests; these
// run the full New → Valuer → Report pipeline the way a user would.

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
)

// randTrial draws one random classification train/test pair plus session
// parameters. Features are uniform floats, so exact distance ties between
// independently drawn points have probability zero.
type trial struct {
	train, test *Dataset
	k           int
}

func randTrial(t *testing.T, rng *rand.Rand, regression bool) trial {
	t.Helper()
	n := 8 + rng.IntN(32)
	dim := 1 + rng.IntN(4)
	nTest := 1 + rng.IntN(5)
	classes := 2 + rng.IntN(2)
	k := 1 + rng.IntN(5)
	rows := func(n int) [][]float64 {
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, dim)
			for j := range x[i] {
				x[i][j] = rng.Float64() * 10
			}
		}
		return x
	}
	var train, test *Dataset
	var err error
	if regression {
		targets := func(n int) []float64 {
			y := make([]float64, n)
			for i := range y {
				y[i] = rng.NormFloat64()
			}
			return y
		}
		train, err = NewRegressionDataset(rows(n), targets(n))
		if err == nil {
			test, err = NewRegressionDataset(rows(nTest), targets(nTest))
		}
	} else {
		labels := func(n int) []int {
			y := make([]int, n)
			for i := range y {
				y[i] = rng.IntN(classes)
			}
			return y
		}
		train, err = NewClassificationDataset(rows(n), labels(n))
		if err == nil {
			test, err = NewClassificationDataset(rows(nTest), labels(nTest))
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return trial{train: train, test: test, k: k}
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// gain returns ν(D) − ν(∅), the total value efficiency demands the Shapley
// values split.
func gain(t *testing.T, v *Valuer, test *Dataset) float64 {
	t.Helper()
	ctx := context.Background()
	all := make([]int, v.Train().N())
	for i := range all {
		all[i] = i
	}
	uD, err := v.Utility(ctx, test, all)
	if err != nil {
		t.Fatal(err)
	}
	u0, err := v.Utility(ctx, test, nil)
	if err != nil {
		t.Fatal(err)
	}
	return uD - u0
}

// Efficiency: Σ_i sv_i = ν(D) − ν(∅) for Exact (classification and
// regression), for Truncated (exactly when K* ≥ N, within N·eps otherwise),
// and for Sellers at the seller level.
func TestPropertyEfficiency(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(4001, 1))
	for trialNo := 0; trialNo < 15; trialNo++ {
		tr := randTrial(t, rng, trialNo%3 == 2)
		v, err := New(tr.train, WithK(tr.k))
		if err != nil {
			t.Fatal(err)
		}
		want := gain(t, v, tr.test)

		rep, err := v.Exact(ctx, tr.test)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sumOf(rep.Values) - want); d > 1e-9 {
			t.Fatalf("trial %d: exact efficiency broken: Σsv − (ν(D)−ν(∅)) = %g", trialNo, d)
		}

		if tr.train.IsRegression() {
			continue // Truncated/Sellers apply to classification
		}
		n := tr.train.N()
		// With eps ≤ 1/N the truncation keeps every point: exact efficiency.
		full, err := v.Truncated(ctx, tr.test, 1/float64(2*n))
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sumOf(full.Values) - want); d > 1e-9 {
			t.Fatalf("trial %d: truncated(K*≥N) efficiency broken by %g", trialNo, d)
		}
		// With a coarse eps each point moves by at most eps (Theorem 2), so
		// the sum moves by at most N·eps.
		const eps = 0.2
		coarse, err := v.Truncated(ctx, tr.test, eps)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sumOf(coarse.Values) - want); d > float64(n)*eps+1e-9 {
			t.Fatalf("trial %d: truncated(eps=%g) sum drifted by %g > N·eps", trialNo, eps, d)
		}

		// Seller-level efficiency: shares of the m sellers split the same
		// total gain (Theorem 8's game is over the same utility).
		m := 2 + rng.IntN(3)
		owners := make([]int, n)
		for i := range owners {
			owners[i] = i % m // round-robin: every seller owns ≥ 1 point
		}
		sellers, err := v.Sellers(ctx, tr.test, owners, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(sellers.Values) != m {
			t.Fatalf("trial %d: %d seller values for m=%d", trialNo, len(sellers.Values), m)
		}
		if d := math.Abs(sumOf(sellers.Values) - want); d > 1e-9 {
			t.Fatalf("trial %d: seller efficiency broken by %g", trialNo, d)
		}
	}
}

// Symmetry: a duplicated training point (same features, same response) must
// receive exactly the same value as its twin — under Exact for both data
// kinds, under Truncated, and at the seller level when two sellers own
// bit-identical point sets.
func TestPropertySymmetry(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(4002, 2))
	for trialNo := 0; trialNo < 15; trialNo++ {
		regression := trialNo%3 == 2
		tr := randTrial(t, rng, regression)
		// Duplicate training point 0 (features and response) as point n-1 by
		// rebuilding the dataset with the copy appended.
		x := append(append([][]float64{}, tr.train.X...), tr.train.X[0])
		var train *Dataset
		var err error
		if regression {
			train, err = NewRegressionDataset(x, append(append([]float64{}, tr.train.Targets...), tr.train.Targets[0]))
		} else {
			train, err = NewClassificationDataset(x, append(append([]int{}, tr.train.Labels...), tr.train.Labels[0]))
		}
		if err != nil {
			t.Fatal(err)
		}
		dup := train.N() - 1

		v, err := New(train, WithK(tr.k))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := v.Exact(ctx, tr.test)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(rep.Values[0] - rep.Values[dup]); d > 1e-12 {
			t.Fatalf("trial %d: exact values of duplicates differ by %g (%v vs %v)",
				trialNo, d, rep.Values[0], rep.Values[dup])
		}

		if regression {
			continue
		}
		// eps ≤ 1/N keeps K* ≥ N, so no truncation boundary can fall between
		// the equal-distance twins.
		trunc, err := v.Truncated(ctx, tr.test, 1/float64(2*train.N()))
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(trunc.Values[0] - trunc.Values[dup]); d > 1e-12 {
			t.Fatalf("trial %d: truncated values of duplicates differ by %g", trialNo, d)
		}

		// Seller symmetry: seller 0 owns exactly {point 0}, seller 1 exactly
		// {its duplicate}; everyone else belongs to seller 2.
		owners := make([]int, train.N())
		for i := range owners {
			owners[i] = 2
		}
		owners[0], owners[dup] = 0, 1
		sellers, err := v.Sellers(ctx, tr.test, owners, 3)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(sellers.Values[0] - sellers.Values[1]); d > 1e-12 {
			t.Fatalf("trial %d: twin sellers valued differently by %g (%v vs %v)",
				trialNo, d, sellers.Values[0], sellers.Values[1])
		}
	}
}

// Null player: a planted point far beyond the rest of the training set — so
// it is never among any test point's K* nearest neighbors — gets exactly 0
// from Truncated and a value bounded by the Theorem 1 tail (|sv| ≤ 1/N) from
// Exact; a seller owning only that point is likewise bounded by 1/M.
func TestPropertyNullPlayer(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(4003, 3))
	for trialNo := 0; trialNo < 15; trialNo++ {
		tr := randTrial(t, rng, false)
		// All base features live in [0,10]^dim; plant the null point at 1e6.
		far := make([]float64, tr.train.Dim())
		for j := range far {
			far[j] = 1e6
		}
		x := append(append([][]float64{}, tr.train.X...), far)
		labels := append(append([]int{}, tr.train.Labels...), tr.train.Labels[0])
		train, err := NewClassificationDataset(x, labels)
		if err != nil {
			t.Fatal(err)
		}
		n := train.N()
		farIdx := n - 1

		v, err := New(train, WithK(tr.k))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := v.Exact(ctx, tr.test)
		if err != nil {
			t.Fatal(err)
		}
		// The farthest point's exact value is s_N = 1[y match]/N per test
		// point (Theorem 1's recursion base case), so |sv| ≤ 1/N.
		if got := math.Abs(rep.Values[farIdx]); got > 1/float64(n)+1e-12 {
			t.Fatalf("trial %d: far point exact value %g exceeds 1/N = %g", trialNo, got, 1/float64(n))
		}

		// eps = 0.25 gives K* = max{K, 4} < N: the far point is outside
		// every test point's K* set and must be worth exactly zero.
		trunc, err := v.Truncated(ctx, tr.test, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if trunc.Values[farIdx] != 0 {
			t.Fatalf("trial %d: truncated far-point value = %g, want exactly 0", trialNo, trunc.Values[farIdx])
		}

		// Seller level: the seller owning only the far point is bounded by
		// the analogous 1/M tail.
		m := 3
		owners := make([]int, n)
		for i := range owners {
			owners[i] = i % (m - 1)
		}
		owners[farIdx] = m - 1
		sellers, err := v.Sellers(ctx, tr.test, owners, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := math.Abs(sellers.Values[m-1]); got > 1/float64(m)+1e-12 {
			t.Fatalf("trial %d: far seller value %g exceeds 1/M = %g", trialNo, got, 1/float64(m))
		}
	}
}
