package knnshapley

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"knnshapley/internal/core"
	"knnshapley/internal/knn"
)

// The ten algorithms of the paper, registered as declarative methods. Each
// parameter struct implements Method; the named Valuer methods are thin
// wrappers constructing one of these and calling Evaluate.
func init() {
	Register(ExactParams{})
	Register(TruncatedParams{})
	Register(MCParams{})
	Register(BaselineParams{})
	Register(SellerParams{})
	Register(SellerMCParams{})
	Register(CompositeParams{})
	Register(LSHParams{})
	Register(KDParams{})
	Register(UtilityParams{})
}

// fptr is a shorthand for schema bounds.
func fptr(v float64) *float64 { return &v }

// hashInts condenses an integer slice (an owners map, a utility subset)
// into a cache-key token: 16 hex digits of FNV-1a over the values.
func hashInts(xs []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range xs {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(x) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// validateOwners runs the training-set-independent checks of a seller
// assignment; the length-vs-train check happens at Run (Valuer.checkOwners).
func validateOwners(owners []int, m int) error {
	if len(owners) == 0 {
		return errors.New("owners required (one seller index per training point)")
	}
	if m <= 0 {
		return fmt.Errorf("seller count m = %d, want >= 1", m)
	}
	for i, o := range owners {
		if o < 0 || o >= m {
			return fmt.Errorf("owner %d of point %d outside [0,%d)", o, i, m)
		}
	}
	return nil
}

// ownerSpecs is the shared schema fragment of the seller-level games.
func ownerSpecs(required bool) []ParamSpec {
	return []ParamSpec{
		{Name: "owners", Type: "[]int", Required: required,
			Doc: "seller index (0..m-1) of each training point"},
		{Name: "m", Type: "int", Required: required, Min: fptr(1),
			Doc: "number of sellers"},
	}
}

// ExactParams runs the exact Shapley valuation (Theorems 1, 6 and 7). It
// has no parameters: the utility is fixed by the session (K, metric,
// weighting), and the algorithm is deterministic.
type ExactParams struct{}

// Name implements Method.
func (ExactParams) Name() string { return "exact" }

// Schema implements Method.
func (ExactParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "exact",
		Description: "Exact Shapley values: O(N log N) recursion for unweighted KNN (Theorems 1/6), counting algorithm for weighted (Theorem 7).",
		Params:      []ParamSpec{},
	}
}

// Validate implements Method.
func (ExactParams) Validate() error { return nil }

// CacheKey implements Method.
func (ExactParams) CacheKey() string { return "" }

// Run implements Method.
func (ExactParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	src, err := v.stream(test)
	if err != nil {
		return nil, err
	}
	var kern core.Kernel[*knn.TestPoint]
	switch v.cfg.kind(v.train) {
	case knn.UnweightedClass:
		kern = core.ExactClassKernel{N: v.train.N()}
	case knn.UnweightedRegress:
		kern = core.ExactRegressKernel{N: v.train.N()}
	default:
		kern = core.WeightedKernel{N: v.train.N()}
	}
	sv, err := core.NewEngine[*knn.TestPoint](v.engine(ctx, test.N())).Run(ctx, src, kern)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv, Method: "exact"}, test, start), nil
}

// TruncatedParams runs the (eps, 0)-approximation of Theorem 2 for
// unweighted KNN classification: only the K* = max{K, ⌈1/eps⌉} nearest
// neighbors of each test point receive (exact) values, everyone else zero.
type TruncatedParams struct {
	// Eps is the max per-point approximation error (required, > 0).
	Eps float64 `json:"eps,omitempty"`
}

// Name implements Method.
func (TruncatedParams) Name() string { return "truncated" }

// Schema implements Method.
func (TruncatedParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "truncated",
		Description: "Theorem 2 (eps,0)-approximation over the K* = max{K, ceil(1/eps)} nearest neighbors; unweighted classification only.",
		Params: []ParamSpec{
			{Name: "eps", Type: "float", Required: true, Min: fptr(0), Exclusive: true,
				Doc: "max per-point approximation error"},
		},
	}
}

// Validate implements Method.
func (p TruncatedParams) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("eps = %g, want > 0", p.Eps)
	}
	return nil
}

// CacheKey implements Method.
func (p TruncatedParams) CacheKey() string { return fmt.Sprintf("eps=%g", p.Eps) }

// Run implements Method.
func (p TruncatedParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if v.train.IsRegression() || v.cfg.Weight != nil {
		return nil, errors.New("knnshapley: Truncated applies to unweighted classification")
	}
	src, err := v.stream(test)
	if err != nil {
		return nil, err
	}
	kern := core.TruncatedClassKernel{N: v.train.N(), Eps: p.Eps}
	sv, err := core.NewEngine[*knn.TestPoint](v.engine(ctx, test.N())).Run(ctx, src, kern)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv, Method: "truncated",
		KStar: core.KStar(v.cfg.K, p.Eps)}, test, start), nil
}

// MCParams runs the improved Monte-Carlo estimator (Algorithm 2):
// heap-incremental utility evaluation plus a statistical permutation budget
// (Theorem 5). The fields mirror MCOptions one for one.
//
// The zero-value Bound (Bennett) needs eps and delta; as a convenience a
// request carrying a fixed budget t with eps or delta unset selects the
// Fixed bound — the wire convention clients already speak.
type MCParams struct {
	// Eps, Delta set the (ε,δ)-approximation target (required unless the
	// bound is fixed).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// Bound selects the budget rule (default bennett).
	Bound Bound `json:"bound,omitempty"`
	// T fixes the budget when Bound == Fixed, and caps it otherwise.
	T int `json:"t,omitempty"`
	// RangeHalfWidth is the half-width r of the per-step utility-difference
	// range [−r, r]; defaults to 1/K for unweighted classification and must
	// be set explicitly for other utilities under a statistical bound.
	RangeHalfWidth float64 `json:"rangeHalfWidth,omitempty"`
	// Heuristic stops a test point's sampling early once its estimates
	// stabilize within Eps/50 (Section 6.2.2).
	Heuristic bool `json:"heuristic,omitempty"`
	// Seed drives the permutation stream.
	Seed uint64 `json:"seed,omitempty"`
}

// effective resolves the wire convention: a fixed budget T with eps or
// delta unset under the default bound means "run exactly T permutations".
func (p MCParams) effective() MCParams {
	if p.Bound == Bennett && p.T > 0 && (p.Eps <= 0 || p.Delta <= 0) {
		p.Bound = Fixed
	}
	return p
}

// mcParamSpecs is the schema fragment shared by montecarlo and sellersmc.
func mcParamSpecs() []ParamSpec {
	return []ParamSpec{
		{Name: "eps", Type: "float", Min: fptr(0), Exclusive: true,
			Doc: "approximation error target (required unless bound=fixed)"},
		{Name: "delta", Type: "float", Min: fptr(0), Max: fptr(1), Exclusive: true,
			Doc: "approximation failure probability (required unless bound=fixed)"},
		{Name: "bound", Type: "string", Default: "bennett", Enum: BoundNames(),
			Doc: "permutation budget rule; t>0 without eps/delta implies fixed"},
		{Name: "t", Type: "int", Min: fptr(0),
			Doc: "fixed permutation budget (bound=fixed), else a cap"},
		{Name: "rangeHalfWidth", Type: "float", Min: fptr(0),
			Doc: "utility-difference half-width r (default 1/K, unweighted classification)"},
		{Name: "heuristic", Type: "bool", Default: false,
			Doc: "stop a test point early once estimates stabilize (Section 6.2.2)"},
		{Name: "seed", Type: "uint",
			Doc: "permutation stream seed"},
	}
}

// Name implements Method.
func (MCParams) Name() string { return "montecarlo" }

// Schema implements Method.
func (MCParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "montecarlo",
		Description: "Algorithm 2 permutation sampling with heap-incremental utilities and the Theorem 5 Bennett budget; works for every utility kind.",
		Params:      mcParamSpecs(),
	}
}

// Validate implements Method.
func (p MCParams) Validate() error {
	eff := p.effective()
	switch eff.Bound {
	case Bennett, BennettApprox, Hoeffding:
		if eff.Eps <= 0 {
			return fmt.Errorf("eps = %g, want > 0 (or a fixed budget t)", eff.Eps)
		}
		if eff.Delta <= 0 || eff.Delta >= 1 {
			return fmt.Errorf("delta = %g, want in (0,1)", eff.Delta)
		}
		if eff.T < 0 {
			return fmt.Errorf("t = %d, want >= 0 (0 = uncapped)", eff.T)
		}
	case Fixed:
		if eff.T <= 0 {
			return fmt.Errorf("t = %d, want >= 1 with the fixed bound", eff.T)
		}
	default:
		return fmt.Errorf("unknown bound %d", int(eff.Bound))
	}
	if eff.RangeHalfWidth < 0 {
		return fmt.Errorf("rangeHalfWidth = %g, want >= 0", eff.RangeHalfWidth)
	}
	return nil
}

// CacheKey implements Method.
func (p MCParams) CacheKey() string {
	eff := p.effective()
	return fmt.Sprintf("eps=%g|delta=%g|bound=%s|t=%d|range=%g|heuristic=%t|seed=%d",
		eff.Eps, eff.Delta, eff.Bound, eff.T, eff.RangeHalfWidth, eff.Heuristic, eff.Seed)
}

// Run implements Method.
func (p MCParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	src, err := v.stream(test)
	if err != nil {
		return nil, err
	}
	mcfg := MCOptions(p.effective()).internal(v.cfg)
	mcfg.Progress = v.engine(ctx, test.N()).Progress
	res, err := core.ImprovedMCStream(ctx, src, v.cfg.kind(v.train), v.train.N(), v.cfg.K, mcfg)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: res.SV, Method: "montecarlo",
		Permutations: res.Permutations, Budget: res.Budget,
		UtilityEvals: res.UtilityEvals}, test, start), nil
}

// BaselineParams runs the Section 2.2 baseline estimator: permutation
// sampling with from-scratch utility evaluation and the Hoeffding budget.
// It exists for benchmarking against (Figures 5, 6 and 11); prefer
// montecarlo.
type BaselineParams struct {
	// Eps, Delta set the (ε,δ)-approximation target (required, Hoeffding).
	Eps   float64 `json:"eps,omitempty"`
	Delta float64 `json:"delta,omitempty"`
	// T caps the Hoeffding budget (0 = uncapped).
	T int `json:"t,omitempty"`
	// Seed drives the permutation stream.
	Seed uint64 `json:"seed,omitempty"`
}

// Name implements Method.
func (BaselineParams) Name() string { return "baseline" }

// Schema implements Method.
func (BaselineParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "baseline",
		Description: "Section 2.2 baseline Monte-Carlo: from-scratch utilities under the Hoeffding budget; for benchmarking against montecarlo.",
		Params: []ParamSpec{
			{Name: "eps", Type: "float", Required: true, Min: fptr(0), Exclusive: true,
				Doc: "approximation error target"},
			{Name: "delta", Type: "float", Required: true, Min: fptr(0), Max: fptr(1), Exclusive: true,
				Doc: "approximation failure probability"},
			{Name: "t", Type: "int", Min: fptr(0),
				Doc: "budget cap (0 = the full Hoeffding budget)"},
			{Name: "seed", Type: "uint",
				Doc: "permutation stream seed"},
		},
	}
}

// Validate implements Method.
func (p BaselineParams) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("eps = %g, want > 0", p.Eps)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("delta = %g, want in (0,1)", p.Delta)
	}
	if p.T < 0 {
		return fmt.Errorf("t = %d, want >= 0 (0 = uncapped)", p.T)
	}
	return nil
}

// CacheKey implements Method.
func (p BaselineParams) CacheKey() string {
	return fmt.Sprintf("eps=%g|delta=%g|t=%d|seed=%d", p.Eps, p.Delta, p.T, p.Seed)
}

// Run implements Method.
func (p BaselineParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	tps, err := v.testPoints(test)
	if err != nil {
		return nil, err
	}
	res, err := core.BaselineMC(ctx, tps, p.Eps, p.Delta, p.T, p.Seed)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: res.SV, Method: "baseline",
		Permutations: res.Permutations, Budget: res.Budget,
		UtilityEvals: res.UtilityEvals}, test, start), nil
}

// SellerParams runs the exact seller-level game (Section 4, Theorem 8):
// one Shapley value per seller when sellers contribute multiple training
// points. Cost grows like M^K — use sellersmc beyond small M·K.
type SellerParams struct {
	// Owners names the seller (0..m-1) of each training point; its length
	// must equal the training-set size and every seller must own a point.
	Owners []int `json:"owners,omitempty"`
	// M is the number of sellers.
	M int `json:"m,omitempty"`
}

// Name implements Method.
func (SellerParams) Name() string { return "sellers" }

// Schema implements Method.
func (SellerParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "sellers",
		Description: "Exact seller-level Shapley values when sellers own multiple training points (Theorem 8); cost ~M^K.",
		Params:      ownerSpecs(true),
	}
}

// Validate implements Method.
func (p SellerParams) Validate() error { return validateOwners(p.Owners, p.M) }

// CacheKey implements Method.
func (p SellerParams) CacheKey() string {
	return fmt.Sprintf("owners=%016x|m=%d", hashInts(p.Owners), p.M)
}

// Run implements Method.
func (p SellerParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if err := v.checkOwners(p.Owners, p.M); err != nil {
		return nil, err
	}
	src, err := v.stream(test)
	if err != nil {
		return nil, err
	}
	kern := core.MultiSellerKernel{Owners: p.Owners, M: p.M}
	sv, err := core.NewEngine[*knn.TestPoint](v.engine(ctx, test.N())).Run(ctx, src, kern)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv, Method: "sellers"}, test, start), nil
}

// SellerMCParams estimates seller values by permutation sampling over
// sellers with heap-incremental utilities — the scalable alternative for
// large M or K (Figure 13). The Monte-Carlo fields ride along inline.
type SellerMCParams struct {
	// Owners and M are as in SellerParams.
	Owners []int `json:"owners,omitempty"`
	M      int   `json:"m,omitempty"`
	MCParams
}

// Name implements Method.
func (SellerMCParams) Name() string { return "sellersmc" }

// Schema implements Method.
func (SellerMCParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "sellersmc",
		Description: "Monte-Carlo seller-level values: permutation sampling over sellers with heap-incremental utilities (Figure 13).",
		Params:      append(ownerSpecs(true), mcParamSpecs()...),
	}
}

// Validate implements Method.
func (p SellerMCParams) Validate() error {
	if err := validateOwners(p.Owners, p.M); err != nil {
		return err
	}
	return p.MCParams.Validate()
}

// CacheKey implements Method.
func (p SellerMCParams) CacheKey() string {
	return fmt.Sprintf("owners=%016x|m=%d|%s", hashInts(p.Owners), p.M, p.MCParams.CacheKey())
}

// Run implements Method.
func (p SellerMCParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if err := v.checkOwners(p.Owners, p.M); err != nil {
		return nil, err
	}
	tps, err := v.testPoints(test)
	if err != nil {
		return nil, err
	}
	mcfg := MCOptions(p.MCParams.effective()).internal(v.cfg)
	mcfg.Progress = v.engine(ctx, test.N()).Progress
	res, err := core.MultiSellerMC(ctx, tps, p.Owners, p.M, mcfg)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: res.SV, Method: "sellers-mc",
		Permutations: res.Permutations, Budget: res.Budget,
		UtilityEvals: res.UtilityEvals}, test, start), nil
}

// CompositeParams runs the exact composite game (Eq. 28) valuing the
// computation provider (the "analyst") alongside the data sellers
// (Theorems 9–12). With nil owners every training point is its own seller;
// otherwise sellers are valued at the curator level.
type CompositeParams struct {
	// Owners names the seller of each training point; nil values every
	// point individually (M is then ignored).
	Owners []int `json:"owners,omitempty"`
	// M is the number of sellers when Owners is set.
	M int `json:"m,omitempty"`
}

// Name implements Method.
func (CompositeParams) Name() string { return "composite" }

// Schema implements Method.
func (CompositeParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "composite",
		Description: "Composite game valuing the analyst alongside the data sellers (Theorems 9-12); omit owners to value every point individually.",
		Params:      ownerSpecs(false),
	}
}

// Validate implements Method.
func (p CompositeParams) Validate() error {
	if p.Owners == nil {
		return nil
	}
	return validateOwners(p.Owners, p.M)
}

// CacheKey implements Method.
func (p CompositeParams) CacheKey() string {
	if p.Owners == nil {
		return "owners=nil"
	}
	return fmt.Sprintf("owners=%016x|m=%d", hashInts(p.Owners), p.M)
}

// Run implements Method.
func (p CompositeParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	m := p.M
	if p.Owners == nil {
		m = v.train.N()
	} else if err := v.checkOwners(p.Owners, m); err != nil {
		return nil, err
	}
	src, err := v.stream(test)
	if err != nil {
		return nil, err
	}
	kern := core.CompositeKernel{Owners: p.Owners, M: m}
	sv, err := core.NewEngine[*knn.TestPoint](v.engine(ctx, test.N())).Run(ctx, src, kern)
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv[:m], Analyst: sv[m],
		Method: "composite"}, test, start), nil
}

// LSHParams runs the sublinear (eps, delta)-approximation for unweighted
// KNN classification: only K* = max{K, ⌈1/eps⌉} neighbors are retrieved
// per query from a p-stable LSH index (Theorems 2–4). The index for a given
// (eps, delta, seed) is tuned and built once per session and reused.
type LSHParams struct {
	// Eps is the max per-point approximation error (required, > 0).
	Eps float64 `json:"eps,omitempty"`
	// Delta is the retrieval failure probability (required, in (0,1)).
	Delta float64 `json:"delta,omitempty"`
	// Seed drives the random projections.
	Seed uint64 `json:"seed,omitempty"`
}

// Name implements Method.
func (LSHParams) Name() string { return "lsh" }

// Schema implements Method.
func (LSHParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "lsh",
		Description: "Sublinear (eps,delta)-approximation from a p-stable LSH index (Theorems 2-4); unweighted L2 classification only.",
		Params: []ParamSpec{
			{Name: "eps", Type: "float", Required: true, Min: fptr(0), Exclusive: true,
				Doc: "max per-point approximation error"},
			{Name: "delta", Type: "float", Required: true, Min: fptr(0), Max: fptr(1), Exclusive: true,
				Doc: "retrieval failure probability"},
			{Name: "seed", Type: "uint",
				Doc: "random projection seed"},
		},
	}
}

// Validate implements Method.
func (p LSHParams) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("eps = %g, want > 0", p.Eps)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("delta = %g, want in (0,1)", p.Delta)
	}
	return nil
}

// CacheKey implements Method.
func (p LSHParams) CacheKey() string {
	return fmt.Sprintf("eps=%g|delta=%g|seed=%d", p.Eps, p.Delta, p.Seed)
}

// Run implements Method.
func (p LSHParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if err := v.checkTest(test); err != nil {
		return nil, err
	}
	inner, err := v.lshValuer(p.Eps, p.Delta, p.Seed)
	if err != nil {
		return nil, err
	}
	sv, err := inner.ValueEngine(ctx, test, v.engine(ctx, test.N()))
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv, Method: "lsh",
		KStar: inner.KStar()}, test, start), nil
}

// KDParams runs the (eps, 0)-approximation with exact K*-nearest-neighbor
// retrieval from a k-d tree (δ = 0, so only the Theorem 2 truncation
// bounds the error). The tree for a given eps is built once per session.
type KDParams struct {
	// Eps is the max per-point approximation error (required, > 0).
	Eps float64 `json:"eps,omitempty"`
}

// Name implements Method.
func (KDParams) Name() string { return "kd" }

// Schema implements Method.
func (KDParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "kd",
		Description: "(eps,0)-approximation over exact k-d tree retrieval; the low-dimension alternative to lsh.",
		Params: []ParamSpec{
			{Name: "eps", Type: "float", Required: true, Min: fptr(0), Exclusive: true,
				Doc: "max per-point approximation error"},
		},
	}
}

// Validate implements Method.
func (p KDParams) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("eps = %g, want > 0", p.Eps)
	}
	return nil
}

// CacheKey implements Method.
func (p KDParams) CacheKey() string { return fmt.Sprintf("eps=%g", p.Eps) }

// Run implements Method.
func (p KDParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if err := v.checkTest(test); err != nil {
		return nil, err
	}
	inner, err := v.kdValuer(p.Eps)
	if err != nil {
		return nil, err
	}
	sv, err := inner.ValueEngine(ctx, test, v.engine(ctx, test.N()))
	if err != nil {
		return nil, err
	}
	return v.report(&Report{Values: sv, Method: "kd",
		KStar: inner.KStar()}, test, start), nil
}

// UtilityParams evaluates the multi-test KNN utility ν(S) of an arbitrary
// training subset (Eq. 8) — useful for auditing group rationality of
// reported values. The report carries the single utility in Values[0].
type UtilityParams struct {
	// Subset lists the training-point indices of S (nil = the empty
	// coalition).
	Subset []int `json:"subset,omitempty"`
}

// Name implements Method.
func (UtilityParams) Name() string { return "utility" }

// Schema implements Method.
func (UtilityParams) Schema() MethodSchema {
	return MethodSchema{
		Name:        "utility",
		Description: "Multi-test KNN utility of a training subset (Eq. 8); the single value lands in values[0].",
		Params: []ParamSpec{
			{Name: "subset", Type: "[]int",
				Doc: "training-point indices of the coalition (omit for the empty one)"},
		},
	}
}

// Validate implements Method.
func (p UtilityParams) Validate() error {
	for _, i := range p.Subset {
		if i < 0 {
			return fmt.Errorf("subset index %d, want >= 0", i)
		}
	}
	return nil
}

// CacheKey implements Method.
func (p UtilityParams) CacheKey() string {
	return fmt.Sprintf("subset=%016x|len=%d", hashInts(p.Subset), len(p.Subset))
}

// Run implements Method.
func (p UtilityParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, i := range p.Subset {
		if i < 0 || i >= v.train.N() {
			return nil, fmt.Errorf("knnshapley: subset index %d outside [0,%d)", i, v.train.N())
		}
	}
	tps, err := v.testPoints(test)
	if err != nil {
		return nil, err
	}
	u := knn.AverageUtility(tps, p.Subset)
	return v.report(&Report{Values: []float64{u}, Method: "utility"}, test, start), nil
}
