package knnshapley

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// A session's LSH and k-d indexes are built once per parameter set and
// reused by every later call — the point of holding a Valuer open.
func TestValuerIndexBuiltOnce(t *testing.T) {
	train := SynthDeep(600, 7)
	test := SynthDeep(6, 8)
	v, err := New(train, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first, err := v.KD(ctx, test, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if v.indexBuilds != 1 {
		t.Fatalf("after first KD call: %d index builds, want 1", v.indexBuilds)
	}
	second, err := v.KD(ctx, test, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if v.indexBuilds != 1 {
		t.Fatalf("after second KD call: %d index builds, want 1 (cache miss)", v.indexBuilds)
	}
	for i := range first.Values {
		if first.Values[i] != second.Values[i] {
			t.Fatalf("cached index changed value %d: %v != %v", i, first.Values[i], second.Values[i])
		}
	}
	// A different eps is a different truncation depth — it must build anew.
	if _, err := v.KD(ctx, test, 0.5); err != nil {
		t.Fatal(err)
	}
	if v.indexBuilds != 2 {
		t.Fatalf("after KD with new eps: %d index builds, want 2", v.indexBuilds)
	}

	lsh1, err := v.LSH(ctx, test, 0.1, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v.indexBuilds != 3 {
		t.Fatalf("after first LSH call: %d index builds, want 3", v.indexBuilds)
	}
	lsh2, err := v.LSH(ctx, test, 0.1, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v.indexBuilds != 3 {
		t.Fatalf("after second LSH call: %d index builds, want 3 (cache miss)", v.indexBuilds)
	}
	for i := range lsh1.Values {
		if lsh1.Values[i] != lsh2.Values[i] {
			t.Fatalf("cached LSH index changed value %d", i)
		}
	}
}

// Concurrent first calls must agree on a single cached index (run under
// -race by verify.sh).
func TestValuerIndexConcurrentBuild(t *testing.T) {
	train := SynthDeep(300, 3)
	test := SynthDeep(4, 4)
	v, err := New(train, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := v.KD(context.Background(), test, 0.1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if v.indexBuilds != 1 {
		t.Fatalf("%d index builds under concurrency, want 1", v.indexBuilds)
	}
}

// The deprecated free functions are wrappers over a one-shot Valuer and
// must reproduce its outputs bit for bit.
func TestDeprecatedWrappersBitIdentical(t *testing.T) {
	train := SynthMNIST(120, 1)
	test := SynthMNIST(9, 2)
	ctx := context.Background()
	v, err := New(train, WithK(3))
	if err != nil {
		t.Fatal(err)
	}

	rep, err := v.Exact(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Exact(train, test, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Exact", old, rep.Values)

	rep, err = v.Truncated(ctx, test, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	old, err = Truncated(train, test, Config{K: 3}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Truncated", old, rep.Values)

	opts := MCOptions{Bound: Fixed, T: 64, Seed: 11}
	rep, err = v.MonteCarlo(ctx, test, opts)
	if err != nil {
		t.Fatal(err)
	}
	oldRep, err := MonteCarlo(train, test, Config{K: 3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "MonteCarlo", oldRep.SV, rep.Values)
	if oldRep.Permutations != rep.Permutations || oldRep.Budget != rep.Budget {
		t.Fatalf("MonteCarlo metadata diverged: %+v vs %+v", oldRep, rep)
	}

	owners := AssignSellers(train.N(), 6)
	rep, err = v.Sellers(ctx, test, owners, 6)
	if err != nil {
		t.Fatal(err)
	}
	old, err = SellerValues(train, test, owners, 6, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Sellers", old, rep.Values)

	rep, err = v.Composite(ctx, test, owners, 6)
	if err != nil {
		t.Fatal(err)
	}
	oldComp, err := CompositeValues(train, test, owners, 6, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "Composite", oldComp.Sellers, rep.Values)
	if oldComp.Analyst != rep.Analyst {
		t.Fatalf("Composite analyst diverged: %v vs %v", oldComp.Analyst, rep.Analyst)
	}

	newU, err := v.Utility(ctx, test, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	oldU, err := Utility(train, test, Config{K: 3}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if newU != oldU {
		t.Fatalf("Utility diverged: %v vs %v", newU, oldU)
	}
}

func assertBitIdentical(t *testing.T, name string, old, now []float64) {
	t.Helper()
	if len(old) != len(now) {
		t.Fatalf("%s: %d values vs %d", name, len(old), len(now))
	}
	for i := range old {
		if old[i] != now[i] {
			t.Fatalf("%s: value %d diverged: %v != %v (bitwise)", name, i, old[i], now[i])
		}
	}
}

// Reports must carry the method tag and a non-zero duration so callers can
// log one uniform record per valuation.
func TestReportMetadata(t *testing.T) {
	train := SynthMNIST(80, 5)
	test := SynthMNIST(5, 6)
	v, err := New(train, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := v.Exact(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "exact" || len(rep.Values) != train.N() {
		t.Fatalf("report %+v", rep)
	}
	mc, err := v.MonteCarlo(ctx, test, MCOptions{Bound: Fixed, T: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Method != "montecarlo" || mc.Permutations == 0 || mc.Budget != 32 || mc.UtilityEvals == 0 {
		t.Fatalf("mc report %+v", mc)
	}
	kd, err := v.KD(ctx, test, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if kd.Method != "kd" || kd.KStar != 4 {
		t.Fatalf("kd report method=%q kStar=%d", kd.Method, kd.KStar)
	}
}

// New must not mutate a hand-assembled, non-contiguous dataset: the
// session takes a flattened copy instead (datasets from the package
// constructors are already contiguous and used as-is).
func TestNewDoesNotMutateHandBuiltDataset(t *testing.T) {
	rows := [][]float64{{0, 1}, {2, 3}, {4, 5}}
	d := &Dataset{X: rows, Labels: []int{0, 1, 0}, Classes: 2}
	v, err := New(d, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Flat(); ok {
		t.Fatal("New flattened the caller's dataset in place")
	}
	if &d.X[0][0] != &rows[0][0] {
		t.Fatal("New repointed the caller's feature rows")
	}
	if v.Train() == d {
		t.Fatal("session shares the non-contiguous dataset instead of copying")
	}
	if _, ok := v.Train().Flat(); !ok {
		t.Fatal("session copy is not contiguous")
	}
	// The copy must value identically to the original data.
	test := &Dataset{X: [][]float64{{0.1, 1.1}}, Labels: []int{0}, Classes: 2}
	rep, err := v.Exact(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Fatalf("%d values", len(rep.Values))
	}
}

// The baseline estimator is reachable from a session and honors the
// context like every other method.
func TestValuerBaselineMonteCarlo(t *testing.T) {
	train := SynthMNIST(30, 1)
	test := SynthMNIST(3, 2)
	v, err := New(train, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.BaselineMonteCarlo(context.Background(), test, 0.2, 0.2, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "baseline" || rep.Permutations == 0 || len(rep.Values) != train.N() {
		t.Fatalf("report %+v", rep)
	}
}

// Context cancellation reaches the baseline sampler's permutation loop.
func TestCancelBaselineMonteCarlo(t *testing.T) {
	train := SynthMNIST(300, 1)
	test := SynthMNIST(3, 2)
	v, err := New(train, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.BaselineMonteCarlo(ctx, test, 0.01, 0.01, 1<<20, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
