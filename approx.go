package knnshapley

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"knnshapley/internal/core"
)

// Bound selects the permutation-budget rule of the Monte-Carlo estimator.
// On the wire it travels as its lower-case name ("bennett",
// "bennett-approx", "hoeffding", "fixed").
type Bound int

// Budget rules, from tightest to loosest (see Figure 11).
const (
	// Bennett solves Theorem 5's Eq. (32) — the paper's improved bound,
	// roughly independent of N.
	Bennett Bound = iota
	// BennettApprox is the closed form T̃ = r²/ε²·log(2K/δ) (Eq. 34).
	BennettApprox
	// Hoeffding is the Section 2.2 baseline budget, growing with log N.
	Hoeffding
	// Fixed runs exactly MCOptions.T permutations.
	Fixed
)

// boundNames maps each Bound onto its wire name, in constant order.
var boundNames = [...]string{"bennett", "bennett-approx", "hoeffding", "fixed"}

// BoundNames returns the wire names of every budget rule — the enum the
// method schemas advertise.
func BoundNames() []string { return append([]string(nil), boundNames[:]...) }

// ParseBound maps a wire name back onto its Bound.
func ParseBound(name string) (Bound, error) {
	for i, n := range boundNames {
		if n == name {
			return Bound(i), nil
		}
	}
	return 0, fmt.Errorf("unknown bound %q (want %s)", name, strings.Join(BoundNames(), ", "))
}

// String returns the wire name of the bound.
func (b Bound) String() string {
	if b >= 0 && int(b) < len(boundNames) {
		return boundNames[b]
	}
	return fmt.Sprintf("bound(%d)", int(b))
}

// MarshalJSON encodes the bound as its wire name.
func (b Bound) MarshalJSON() ([]byte, error) {
	if b < 0 || int(b) >= len(boundNames) {
		return nil, fmt.Errorf("knnshapley: cannot encode bound %d", int(b))
	}
	return json.Marshal(b.String())
}

// UnmarshalJSON accepts the wire name (and, leniently, the integer
// constant) of a budget rule.
func (b *Bound) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := ParseBound(s)
		if err != nil {
			return err
		}
		*b = parsed
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("bound: want one of %s", strings.Join(BoundNames(), ", "))
	}
	if n < 0 || n >= len(boundNames) {
		return fmt.Errorf("bound %d outside [0,%d)", n, len(boundNames))
	}
	*b = Bound(n)
	return nil
}

// MCOptions configures MonteCarlo and SellerValuesMC.
type MCOptions struct {
	// Eps, Delta set the (ε,δ)-approximation target (required unless
	// Bound == Fixed).
	Eps, Delta float64
	// Bound selects the budget rule (default Bennett).
	Bound Bound
	// T fixes the budget when Bound == Fixed, and caps it otherwise.
	T int
	// RangeHalfWidth is the half-width r of the per-step utility-difference
	// range [−r, r]; defaults to 1/K for unweighted classification and must
	// be set explicitly for other utilities when a statistical bound is
	// used.
	RangeHalfWidth float64
	// Heuristic stops a test point's sampling early once its estimates
	// stabilize within Eps/50 (the stopping rule of Section 6.2.2, applied
	// per test point so the sampler parallelizes across the engine).
	Heuristic bool
	// Seed drives the permutation stream.
	Seed uint64
}

func (o MCOptions) internal(cfg Config) core.MCConfig {
	return core.MCConfig{
		Eps:            o.Eps,
		Delta:          o.Delta,
		Bound:          core.BoundKind(o.Bound),
		T:              o.T,
		RangeHalfWidth: o.RangeHalfWidth,
		Heuristic:      o.Heuristic,
		Seed:           o.Seed,
		Workers:        cfg.Workers,
		BatchSize:      cfg.BatchSize,
	}
}

// MCReport describes a Monte-Carlo run.
type MCReport struct {
	// SV holds the estimated Shapley values.
	SV []float64
	// Permutations is the largest count any test point executed (each test
	// point samples its own stream and may stop early under Heuristic);
	// Budget is what the bound asked for.
	Permutations, Budget int
	// UtilityEvals counts incremental utility recomputations — the cost
	// metric Algorithm 2's heap trick minimizes.
	UtilityEvals int
}

// MonteCarlo estimates Shapley values with the improved Monte-Carlo
// estimator (Algorithm 2): heap-incremental utility evaluation plus the
// Bennett permutation budget of Theorem 5. Each test point samples a
// deterministic permutation stream derived from (Seed, test index).
//
// Deprecated: use New and Valuer.MonteCarlo, which honors a
// context.Context (cancellation is checked every permutation).
func MonteCarlo(train, test *Dataset, cfg Config, opts MCOptions) (MCReport, error) {
	v, err := New(train, withConfig(cfg))
	if err != nil {
		return MCReport{}, err
	}
	rep, err := v.MonteCarlo(context.Background(), test, opts)
	if err != nil {
		return MCReport{}, err
	}
	return MCReport{SV: rep.Values, Permutations: rep.Permutations, Budget: rep.Budget,
		UtilityEvals: rep.UtilityEvals}, nil
}

// BaselineMonteCarlo is the Section 2.2 baseline: permutation sampling with
// from-scratch utility evaluation and the Hoeffding budget. It exists for
// benchmarking against (Figures 5, 6 and 11); prefer Valuer.MonteCarlo.
func BaselineMonteCarlo(train, test *Dataset, cfg Config, eps, delta float64, capT int, seed uint64) (MCReport, error) {
	tps, err := cfg.testPoints(train, test, nil)
	if err != nil {
		return MCReport{}, err
	}
	res, err := core.BaselineMC(context.Background(), tps, eps, delta, capT, seed)
	if err != nil {
		return MCReport{}, err
	}
	return MCReport(res), nil
}

// LSHValuer computes sublinear (eps, delta)-approximate Shapley values for
// unweighted KNN classification by retrieving only K* = max{K, ⌈1/eps⌉}
// neighbors per query from a p-stable LSH index (Theorems 2–4). Build it
// once over the training set, then value batches or a stream of queries.
//
// Deprecated: use New and Valuer.LSH, which builds the index lazily and
// caches it inside the session.
type LSHValuer struct {
	inner *core.LSHValuer
}

// NewLSHValuer tunes LSH parameters on the training set (estimating its
// relative contrast, Section 6.1) and builds the index.
func NewLSHValuer(train *Dataset, cfg Config, eps, delta float64, seed uint64) (*LSHValuer, error) {
	if cfg.Weight != nil {
		return nil, fmt.Errorf("knnshapley: the LSH approximation applies to unweighted classification")
	}
	if cfg.Metric != L2 {
		return nil, fmt.Errorf("knnshapley: p-stable LSH requires the L2 metric")
	}
	inner, err := core.NewLSHValuer(train, core.LSHConfig{
		K: cfg.K, Eps: eps, Delta: delta, Seed: seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &LSHValuer{inner: inner}, nil
}

// Value returns approximate Shapley values averaged over the test set.
func (v *LSHValuer) Value(test *Dataset) ([]float64, error) {
	return v.inner.Value(context.Background(), test)
}

// ValueOne returns approximate Shapley values for a single streaming query.
func (v *LSHValuer) ValueOne(q []float64, label int) []float64 {
	return v.inner.ValueOne(q, label)
}

// KStar reports the retrieval depth max{K, ⌈1/eps⌉}.
func (v *LSHValuer) KStar() int { return v.inner.KStar() }

// EstimatedContrast reports the relative contrast C_K* measured during
// tuning — the quantity that governs the approximation's speed (Theorem 3).
func (v *LSHValuer) EstimatedContrast() float64 { return v.inner.Tuned().Contrast.CK }

// KDValuer computes (eps, 0)-approximate Shapley values for unweighted KNN
// classification by retrieving the K* nearest neighbors from a k-d tree —
// the classic alternative to LSH named in Section 3.2. Retrieval is exact
// (δ = 0), so only the Theorem 2 truncation bounds the error; it excels in
// low dimension while LSH wins in high dimension.
//
// Deprecated: use New and Valuer.KD, which builds the tree lazily and
// caches it inside the session.
type KDValuer struct {
	inner   *core.KDValuer
	workers int
}

// NewKDValuer builds a k-d tree over the training set.
func NewKDValuer(train *Dataset, cfg Config, eps float64) (*KDValuer, error) {
	if cfg.Weight != nil {
		return nil, fmt.Errorf("knnshapley: the truncated approximation applies to unweighted classification")
	}
	if cfg.Metric != L2 {
		return nil, fmt.Errorf("knnshapley: the k-d tree backend requires the L2 metric")
	}
	inner, err := core.NewKDValuer(train, cfg.K, eps, 0)
	if err != nil {
		return nil, err
	}
	return &KDValuer{inner: inner, workers: cfg.Workers}, nil
}

// Value returns (eps, 0)-approximate Shapley values averaged over the test
// set.
func (v *KDValuer) Value(test *Dataset) ([]float64, error) {
	return v.inner.Value(context.Background(), test, v.workers)
}

// ValueOne values a single streaming query.
func (v *KDValuer) ValueOne(q []float64, label int) []float64 {
	return v.inner.ValueOne(q, label)
}

// KStar reports the retrieval depth max{K, ⌈1/eps⌉}.
func (v *KDValuer) KStar() int { return v.inner.KStar() }
