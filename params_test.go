package knnshapley

import (
	"math"
	"strings"
	"testing"
)

// Every parameter struct must reject out-of-range values with a
// descriptive error — the validation contract GET /methods advertises.
func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name    string
		params  Method
		wantErr string // substring, "" = must validate
	}{
		{name: "exact ok", params: ExactParams{}},

		{name: "truncated ok", params: TruncatedParams{Eps: 0.1}},
		{name: "truncated eps missing", params: TruncatedParams{}, wantErr: "eps = 0"},
		{name: "truncated eps negative", params: TruncatedParams{Eps: -1}, wantErr: "eps = -1"},

		{name: "mc bennett ok", params: MCParams{Eps: 0.1, Delta: 0.1}},
		{name: "mc fixed via t", params: MCParams{T: 50}}, // the wire convention
		{name: "mc explicit fixed", params: MCParams{Bound: Fixed, T: 1}},
		{name: "mc seed max", params: MCParams{Eps: 0.1, Delta: 0.1, Seed: math.MaxUint64}},
		{name: "mc eps missing", params: MCParams{}, wantErr: "eps = 0"},
		{name: "mc eps negative", params: MCParams{Eps: -0.5, Delta: 0.1}, wantErr: "eps = -0.5"},
		{name: "mc delta missing", params: MCParams{Eps: 0.1}, wantErr: "delta = 0"},
		{name: "mc delta one", params: MCParams{Eps: 0.1, Delta: 1}, wantErr: "delta = 1"},
		{name: "mc negative cap", params: MCParams{Eps: 0.1, Delta: 0.1, T: -1}, wantErr: "t = -1"},
		{name: "mc fixed without t", params: MCParams{Bound: Fixed}, wantErr: "t = 0"},
		{name: "mc unknown bound", params: MCParams{Bound: Bound(42), Eps: 0.1, Delta: 0.1}, wantErr: "unknown bound 42"},
		{name: "mc negative range", params: MCParams{Eps: 0.1, Delta: 0.1, RangeHalfWidth: -2}, wantErr: "rangeHalfWidth = -2"},

		{name: "baseline ok", params: BaselineParams{Eps: 0.2, Delta: 0.2}},
		{name: "baseline eps missing", params: BaselineParams{Delta: 0.2}, wantErr: "eps = 0"},
		{name: "baseline delta high", params: BaselineParams{Eps: 0.2, Delta: 1.5}, wantErr: "delta = 1.5"},
		{name: "baseline negative cap", params: BaselineParams{Eps: 0.2, Delta: 0.2, T: -3}, wantErr: "t = -3"},

		{name: "sellers ok", params: SellerParams{Owners: []int{0, 1, 0}, M: 2}},
		{name: "sellers nil owners", params: SellerParams{M: 2}, wantErr: "owners required"},
		{name: "sellers m zero", params: SellerParams{Owners: []int{0, 0}}, wantErr: "seller count m = 0"},
		{name: "sellers m negative", params: SellerParams{Owners: []int{0}, M: -1}, wantErr: "seller count m = -1"},
		{name: "sellers owner high", params: SellerParams{Owners: []int{0, 2}, M: 2}, wantErr: "owner 2 of point 1 outside [0,2)"},
		{name: "sellers owner negative", params: SellerParams{Owners: []int{-1}, M: 2}, wantErr: "owner -1 of point 0"},

		{name: "sellersmc ok", params: SellerMCParams{Owners: []int{0}, M: 1, MCParams: MCParams{T: 10}}},
		{name: "sellersmc nil owners", params: SellerMCParams{M: 1, MCParams: MCParams{T: 10}}, wantErr: "owners required"},
		{name: "sellersmc mc invalid", params: SellerMCParams{Owners: []int{0}, M: 1}, wantErr: "eps = 0"},

		{name: "composite nil owners ok", params: CompositeParams{}},
		{name: "composite owners ok", params: CompositeParams{Owners: []int{0, 1}, M: 2}},
		{name: "composite m zero", params: CompositeParams{Owners: []int{0}}, wantErr: "seller count m = 0"},

		{name: "lsh ok", params: LSHParams{Eps: 0.1, Delta: 0.1, Seed: 7}},
		{name: "lsh eps missing", params: LSHParams{Delta: 0.1}, wantErr: "eps = 0"},
		{name: "lsh delta missing", params: LSHParams{Eps: 0.1}, wantErr: "delta = 0"},
		{name: "lsh delta one", params: LSHParams{Eps: 0.1, Delta: 1}, wantErr: "delta = 1"},

		{name: "kd ok", params: KDParams{Eps: 2}},
		{name: "kd eps missing", params: KDParams{}, wantErr: "eps = 0"},
		{name: "kd eps negative", params: KDParams{Eps: -0.1}, wantErr: "eps = -0.1"},

		{name: "utility empty ok", params: UtilityParams{}},
		{name: "utility subset ok", params: UtilityParams{Subset: []int{0, 5}}},
		{name: "utility negative index", params: UtilityParams{Subset: []int{-1}}, wantErr: "subset index -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.params.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}

// CacheKey must canonicalize: semantically identical parameter sets map to
// one key however they were spelled, and distinct parameters never share
// one (within a method).
func TestParamsCacheKeyCanonical(t *testing.T) {
	// The wire convention (t without eps/delta) and the explicit Fixed
	// bound are the same computation — one cache entry.
	implicit := MCParams{T: 50}
	explicit := MCParams{Bound: Fixed, T: 50}
	if implicit.CacheKey() != explicit.CacheKey() {
		t.Fatalf("implicit fixed %q != explicit fixed %q", implicit.CacheKey(), explicit.CacheKey())
	}
	if (MCParams{Eps: 0.1, Delta: 0.1}).CacheKey() == (MCParams{Eps: 0.2, Delta: 0.1}).CacheKey() {
		t.Fatal("different eps share a cache key")
	}
	if (ExactParams{}).CacheKey() != "" {
		t.Fatalf("exact cache key %q, want empty", (ExactParams{}).CacheKey())
	}
	a := SellerParams{Owners: []int{0, 1, 0}, M: 2}
	b := SellerParams{Owners: []int{0, 1, 1}, M: 2}
	if a.CacheKey() == b.CacheKey() {
		t.Fatal("different owners share a cache key")
	}
	if (CompositeParams{}).CacheKey() == (CompositeParams{Owners: []int{0}, M: 1}).CacheKey() {
		t.Fatal("nil-owners composite shares a key with an owners one")
	}
	// The key must be stable across calls (maps, hashing).
	if a.CacheKey() != a.CacheKey() {
		t.Fatal("cache key not deterministic")
	}
}

// The Bound enum round-trips through JSON as its wire name and rejects
// garbage.
func TestBoundJSON(t *testing.T) {
	for _, b := range []Bound{Bennett, BennettApprox, Hoeffding, Fixed} {
		p, err := ParseBound(b.String())
		if err != nil || p != b {
			t.Fatalf("ParseBound(%q) = %v, %v", b.String(), p, err)
		}
	}
	var out MCParams
	if _, err := DecodeParams(MCParams{}, []byte(`{"bound":"hoeffding","eps":0.1,"delta":0.1}`)); err != nil {
		t.Fatalf("decode string bound: %v", err)
	}
	p, err := DecodeParams(MCParams{}, []byte(`{"bound":"fixed","t":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.(MCParams).Bound != Fixed {
		t.Fatalf("bound = %v, want fixed", p.(MCParams).Bound)
	}
	if _, err := DecodeParams(MCParams{}, []byte(`{"bound":"bogus"}`)); err == nil {
		t.Fatal("bogus bound accepted")
	}
	if err := out.Bound.UnmarshalJSON([]byte(`1`)); err != nil || out.Bound != BennettApprox {
		t.Fatalf("integer bound: %v %v", out.Bound, err)
	}
}
