package knnshapley

import (
	"context"
	"strings"
	"testing"
	"time"
)

// benchNoopParams is a stub method measuring pure Evaluate dispatch cost
// (and proving external packages can register their own methods).
type benchNoopParams struct{}

func (benchNoopParams) Name() string { return "test-noop" }
func (benchNoopParams) Schema() MethodSchema {
	return MethodSchema{Name: "test-noop", Description: "test stub", Params: []ParamSpec{}}
}
func (benchNoopParams) Validate() error  { return nil }
func (benchNoopParams) CacheKey() string { return "" }
func (benchNoopParams) Run(ctx context.Context, v *Valuer, test *Dataset) (*Report, error) {
	return &Report{Method: "test-noop"}, nil
}

func init() { Register(benchNoopParams{}) }

// builtinMethods is the algorithm family the package ships.
var builtinMethods = []string{
	"baseline", "composite", "exact", "kd", "lsh",
	"montecarlo", "sellers", "sellersmc", "truncated", "utility",
}

// The registry must expose every built-in algorithm, sorted, with a
// well-formed self-describing schema.
func TestRegistryCompleteAndSchemas(t *testing.T) {
	names := MethodNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range builtinMethods {
		if !have[want] {
			t.Fatalf("method %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Methods() not sorted: %v", names)
		}
	}
	for _, m := range Methods() {
		s := m.Schema()
		if s.Name != m.Name() {
			t.Fatalf("schema name %q for method %q", s.Name, m.Name())
		}
		if s.Description == "" {
			t.Fatalf("method %q has no description", m.Name())
		}
		if s.Params == nil {
			t.Fatalf("method %q has nil params (want an empty slice at least)", m.Name())
		}
		for _, p := range s.Params {
			if p.Name == "" || p.Type == "" {
				t.Fatalf("method %q has a param without name/type: %+v", m.Name(), p)
			}
		}
		got, ok := Lookup(m.Name())
		if !ok || got.Name() != m.Name() {
			t.Fatalf("Lookup(%q) = %v, %v", m.Name(), got, ok)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(ExactParams{})
}

// Evaluate must resolve names, default nil params, and reject nonsense
// before any computation starts.
func TestEvaluateRequestResolution(t *testing.T) {
	train := SynthMNIST(40, 1)
	test := SynthMNIST(4, 2)
	v, err := New(train, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Name-only request: the registered defaults run.
	rep, err := v.Evaluate(ctx, Request{Method: "exact", Test: test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "exact" || len(rep.Values) != train.N() {
		t.Fatalf("report %+v", rep)
	}

	// Name + params must agree.
	if _, err := v.Evaluate(ctx, Request{Method: "exact", Params: KDParams{Eps: 0.1}, Test: test}); err == nil ||
		!strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("mismatched method/params: %v", err)
	}
	// Matching pair is fine.
	if _, err := v.Evaluate(ctx, Request{Method: "kd", Params: KDParams{Eps: 0.25}, Test: test}); err != nil {
		t.Fatal(err)
	}

	if _, err := v.Evaluate(ctx, Request{Method: "mystery", Test: test}); err == nil ||
		!strings.Contains(err.Error(), `unknown method "mystery"`) {
		t.Fatalf("unknown method: %v", err)
	}
	if _, err := v.Evaluate(ctx, Request{Test: test}); err == nil ||
		!strings.Contains(err.Error(), "empty Request") {
		t.Fatalf("empty request: %v", err)
	}

	// Invalid params are rejected with the method named.
	if _, err := v.Evaluate(ctx, Request{Params: TruncatedParams{Eps: -1}, Test: test}); err == nil ||
		!strings.Contains(err.Error(), "truncated: eps = -1") {
		t.Fatalf("invalid params: %v", err)
	}
}

// The named methods are thin wrappers over Evaluate; both entry points
// must produce bit-identical values for every algorithm.
func TestEvaluateMatchesMethodsBitIdentical(t *testing.T) {
	train := SynthMNIST(120, 1)
	test := SynthMNIST(9, 2)
	owners := AssignSellers(train.N(), 4)
	ctx := context.Background()
	v, err := New(train, WithK(2))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		params  Method
		wrapper func() (*Report, error)
	}{
		{ExactParams{}, func() (*Report, error) { return v.Exact(ctx, test) }},
		{TruncatedParams{Eps: 0.2}, func() (*Report, error) { return v.Truncated(ctx, test, 0.2) }},
		{MCParams{Bound: Fixed, T: 40, Seed: 3}, func() (*Report, error) {
			return v.MonteCarlo(ctx, test, MCOptions{Bound: Fixed, T: 40, Seed: 3})
		}},
		{BaselineParams{Eps: 0.25, Delta: 0.25, T: 30, Seed: 5}, func() (*Report, error) {
			return v.BaselineMonteCarlo(ctx, test, 0.25, 0.25, 30, 5)
		}},
		{SellerParams{Owners: owners, M: 4}, func() (*Report, error) {
			return v.Sellers(ctx, test, owners, 4)
		}},
		{SellerMCParams{Owners: owners, M: 4, MCParams: MCParams{Bound: Fixed, T: 60, Seed: 7}},
			func() (*Report, error) {
				return v.SellersMC(ctx, test, owners, 4, MCOptions{Bound: Fixed, T: 60, Seed: 7})
			}},
		{CompositeParams{Owners: owners, M: 4}, func() (*Report, error) {
			return v.Composite(ctx, test, owners, 4)
		}},
		{UtilityParams{Subset: []int{0, 3, 7}}, func() (*Report, error) {
			u, err := v.Utility(ctx, test, []int{0, 3, 7})
			return &Report{Values: []float64{u}}, err
		}},
	}
	for _, tc := range cases {
		name := tc.params.Name()
		viaEvaluate, err := v.Evaluate(ctx, Request{Params: tc.params, Test: test})
		if err != nil {
			t.Fatalf("%s via Evaluate: %v", name, err)
		}
		viaWrapper, err := tc.wrapper()
		if err != nil {
			t.Fatalf("%s via wrapper: %v", name, err)
		}
		assertBitIdentical(t, name, viaWrapper.Values, viaEvaluate.Values)
	}

	// The ANN methods need high-contrast data; same drill on a second
	// session (which also proves Evaluate shares the session index cache).
	deepTrain := SynthDeep(400, 7)
	deepTest := SynthDeep(5, 8)
	dv, err := New(deepTrain, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	lshEval, err := dv.Evaluate(ctx, Request{Params: LSHParams{Eps: 0.1, Delta: 0.1, Seed: 9}, Test: deepTest})
	if err != nil {
		t.Fatal(err)
	}
	lshWrap, err := dv.LSH(ctx, deepTest, 0.1, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "lsh", lshWrap.Values, lshEval.Values)
	kdEval, err := dv.Evaluate(ctx, Request{Params: KDParams{Eps: 0.1}, Test: deepTest})
	if err != nil {
		t.Fatal(err)
	}
	kdWrap, err := dv.KD(ctx, deepTest, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "kd", kdWrap.Values, kdEval.Values)
	if dv.indexBuilds != 2 {
		t.Fatalf("%d index builds across Evaluate+wrapper calls, want 2 (shared cache)", dv.indexBuilds)
	}
}

// DecodeParams is the single generic wire→params path: typed decode,
// defaults on empty input, rejection of misdirected parameters.
func TestDecodeParams(t *testing.T) {
	p, err := DecodeParams(MCParams{}, []byte(`{"eps":0.1,"delta":0.2,"seed":9,"heuristic":true}`))
	if err != nil {
		t.Fatal(err)
	}
	mc, ok := p.(MCParams)
	if !ok || mc.Eps != 0.1 || mc.Delta != 0.2 || mc.Seed != 9 || !mc.Heuristic {
		t.Fatalf("decoded %#v", p)
	}

	// Embedded MC fields of sellersmc decode inline.
	p, err = DecodeParams(SellerMCParams{}, []byte(`{"owners":[0,1],"m":2,"t":5}`))
	if err != nil {
		t.Fatal(err)
	}
	smc := p.(SellerMCParams)
	if smc.M != 2 || smc.T != 5 || len(smc.Owners) != 2 {
		t.Fatalf("decoded %#v", smc)
	}

	// Defaults on empty input.
	p, err = DecodeParams(TruncatedParams{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.(TruncatedParams) != (TruncatedParams{}) {
		t.Fatalf("defaults %#v", p)
	}

	// A parameter the method does not take is an error, not noise.
	if _, err := DecodeParams(ExactParams{}, []byte(`{"eps":0.1}`)); err == nil ||
		!strings.Contains(err.Error(), "exact") {
		t.Fatalf("misdirected parameter: %v", err)
	}
	if _, err := DecodeParams(MCParams{}, []byte(`{"eps":"high"}`)); err == nil {
		t.Fatal("mistyped parameter accepted")
	}
}

// Evaluate's dispatch (registry lookup, validation, interface call) must
// stay under a microsecond per request — the redesign may not tax the
// hot path. Measured against a no-op method so only dispatch is timed.
// The hard gate only applies without -race: race instrumentation inflates
// every atomic/map access several-fold, which would make the bound flake
// on loaded runners without measuring anything real.
func TestEvaluateDispatchOverhead(t *testing.T) {
	train := SynthMNIST(10, 1)
	test := SynthMNIST(2, 2)
	v, err := New(train, WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Method: "test-noop", Test: test}
	for i := 0; i < 1000; i++ { // warm up
		if _, err := v.Evaluate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	const iters = 100000
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := v.Evaluate(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	perOp := time.Since(start) / iters
	t.Logf("Evaluate dispatch: %v/req", perOp)
	if raceEnabled {
		t.Skipf("measured %v/req; skipping the <1µs gate under -race (instrumentation overhead)", perOp)
	}
	if perOp > time.Microsecond {
		t.Fatalf("Evaluate dispatch costs %v/req, want < 1µs", perOp)
	}
}

func BenchmarkEvaluateDispatch(b *testing.B) {
	train := SynthMNIST(10, 1)
	test := SynthMNIST(2, 2)
	v, err := New(train, WithK(1))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Method: "test-noop", Test: test}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Evaluate(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
